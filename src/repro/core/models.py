"""The 3-way-concurrency offload-time models (paper Section III-B).

All predictors share the same signature::

    predict_*(problem, t, models, interpolate=False) -> seconds

where ``problem`` is a :class:`~repro.core.params.CoCoProblem`, ``t``
the tiling size, and ``models`` a
:class:`~repro.core.instantiation.MachineModels` produced by the
deployment module.  Predictors never see the simulator's ground-truth
parameters — only the empirically fitted ones.

Implemented models:

==============  =======  ====================================================
name            paper    assumptions
==============  =======  ====================================================
``cso``         [11]     linear kernel scaling, no reuse, no bid slowdown
``baseline``    Eq. 1    all operands both fetched and written back
``dataloc``     Eq. 2    only get/set operands transferred
``bts``         Eq. 3+4  + asymmetric bidirectional slowdown
``dr``          Eq. 5    + fetch-once data reuse (level-3)
==============  =======  ====================================================

Edge-aware extension
--------------------
The paper's formulas assume every tile is a full ``T x T`` square
(exact when ``T`` divides every dimension).  With ``edge_aware=True``
(the default for the CoCoPeLia models) per-tile times are scaled by the
*average* tile work/bytes — ``D / (ceil(D/T) * T)`` per dimension — so
tile sizes that do not divide the problem, or that exceed a small
dimension (clamped tiles of fat-by-thin problems), are predicted
instead of over-charged.  ``edge_aware=False`` recovers the paper's
literal formulas; the ablation benchmark compares both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ModelError
from .exec_model import ExecLookup
from .instantiation import MachineModels
from .params import CoCoProblem, OperandInstance, prefix_for
from .transfer_model import LinkModel


def _dim_fill(d: int, t: int) -> float:
    """Average fraction of a T-extent actually covered along one dim."""
    return d / (math.ceil(d / t) * t)


@dataclass(frozen=True)
class TileTimes:
    """Per-tile component times for a given (problem, T)."""

    #: Execution time of one (average) subkernel.
    t_gpu: float
    #: Pipeline-fill fetch: one tile of every get-flagged operand.
    t_in: float
    #: Pipeline-drain writeback: one tile of every set-flagged operand.
    t_out: float
    #: Mean h2d time of one tile over the *fetched* operands.
    t_h2d_fetched: float
    #: Mean h2d / d2h time of one tile over *all* operands (Eq. 1 uses
    #: these with the opd multiplier).
    t_h2d_all: float
    t_d2h_all: float


def _operand_tile_bytes(problem: CoCoProblem, op: OperandInstance, t: int,
                        edge_aware: bool) -> float:
    """Bytes of one tile of operand ``op`` (average tile if edge-aware)."""
    if edge_aware:
        # Average tile extent per dimension: s / ceil(s/t) — equals t
        # for divisible dims, s for clamped dims (s < t).
        e1 = t * _dim_fill(op.s1, t)
        e2 = 1.0 if op.is_vector else t * _dim_fill(op.s2, t)
    else:
        e1 = float(t)
        e2 = 1.0 if op.is_vector else float(t)
    return e1 * e2 * problem.elem_size


def tile_times(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> TileTimes:
    """Single-tile transfer and execution times (the f1/f2/f3 of III-B)."""
    if t <= 0:
        raise ModelError(f"non-positive tiling size {t}")
    if not edge_aware and t > problem.min_dim():
        raise ModelError(
            f"tiling size {t} exceeds the smallest problem dimension "
            f"{problem.min_dim()} (only valid with edge_aware=True)"
        )
    link = models.link
    lookup = models.exec_lookup(problem.routine.name, prefix_for(problem.dtype))
    # --- kernel time of the average subkernel ---
    t_gpu = lookup.time(t, interpolate=interpolate)
    if edge_aware:
        # Average subkernel work relative to a full T^... kernel: each
        # dimension contributes d / (ceil(d/t) * t), which covers both
        # ragged edges (d > t, not divisible) and clamping (d < t).
        work_ratio = 1.0
        for d in problem.dims:
            work_ratio *= _dim_fill(d, t)
        t_gpu *= work_ratio
    # --- per-operand tile transfer times ---
    h2d_times: List[float] = []
    d2h_times: List[float] = []
    fetched_h2d: List[float] = []
    t_in = 0.0
    t_out = 0.0
    for op in problem.operands:
        nbytes = _operand_tile_bytes(problem, op, t, edge_aware)
        th = link.h2d.time(nbytes)
        td = link.d2h.time(nbytes)
        h2d_times.append(th)
        d2h_times.append(td)
        if op.get:
            t_in += th
            fetched_h2d.append(th)
        if op.set:
            t_out += td
    return TileTimes(
        t_gpu=t_gpu,
        t_in=t_in,
        t_out=t_out,
        t_h2d_fetched=(sum(fetched_h2d) / len(fetched_h2d)
                       if fetched_h2d else 0.0),
        t_h2d_all=sum(h2d_times) / len(h2d_times),
        t_d2h_all=sum(d2h_times) / len(d2h_times),
    )


# ---------------------------------------------------------------------------
# Eq. 1 — baseline full-offload model
# ---------------------------------------------------------------------------

def predict_baseline(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> float:
    """Paper Eq. 1: pipelined steady state of ``k`` subkernels, with all
    ``opd`` operands assumed both input and output."""
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    opd = problem.opd
    t_in = opd * tt.t_h2d_all
    t_out = opd * tt.t_d2h_all
    steady = max(tt.t_gpu, t_in, t_out) * (k - 1)
    return steady + t_in + tt.t_gpu + t_out


# ---------------------------------------------------------------------------
# Eq. 2 — data-location-aware model
# ---------------------------------------------------------------------------

def predict_dataloc(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> float:
    """Paper Eq. 2: like Eq. 1, but only operands with ``get_i = 1`` are
    fetched and only those with ``set_i = 1`` are written back."""
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    steady = max(tt.t_gpu, tt.t_in, tt.t_out) * (k - 1)
    return steady + tt.t_in + tt.t_gpu + tt.t_out


# ---------------------------------------------------------------------------
# Eq. 3 — bidirectional overlap time
# ---------------------------------------------------------------------------

def bidirectional_overlap_time(t_in: float, t_out: float, link: LinkModel) -> float:
    """Paper Eq. 3: total time of simultaneous h2d/d2h transfers.

    Both directions slow down while overlapped; when the shorter side
    finishes, the remainder of the longer side proceeds at full speed.
    The remaining *slowed* time divided by that direction's slowdown is
    the time it takes once uncontended.
    """
    t_in_bid = link.h2d.sl * t_in
    t_out_bid = link.d2h.sl * t_out
    if t_in_bid >= t_out_bid:
        return t_out_bid + (t_in_bid - t_out_bid) / link.h2d.sl
    return t_in_bid + (t_out_bid - t_in_bid) / link.d2h.sl


# ---------------------------------------------------------------------------
# Eq. 4 — BTS model (bidirectional transfer slowdown)
# ---------------------------------------------------------------------------

def predict_bts(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> float:
    """Paper Eq. 4: Eq. 2 with the steady-state transfer term replaced
    by the bidirectional overlap time of Eq. 3."""
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    t_over = bidirectional_overlap_time(tt.t_in, tt.t_out, models.link)
    steady = max(tt.t_gpu, t_over) * (k - 1)
    return steady + tt.t_in + tt.t_gpu + tt.t_out


# ---------------------------------------------------------------------------
# Eq. 5 — DR model (full data reuse, level-3 BLAS)
# ---------------------------------------------------------------------------

def reuse_transfer_subkernels(problem: CoCoProblem, t: int) -> int:
    """``k_in`` of Section III-B.3: subkernels that still require a tile
    transfer under fetch-once reuse.

    Each fetched operand ``i`` contributes ``tiles_i`` transfers in
    total; the first tile of each operand is loaded while filling the
    pipeline (counted by the model's ``t_in`` term), leaving
    ``tiles_i - 1`` transfers to overlap with the ``k`` subkernels.
    """
    return sum(max(op.tiles(t) - 1, 0) for op in problem.fetched_operands())


def predict_dr(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
    bid_aware: bool = True,
) -> float:
    """Paper Eq. 5: fetch-once data reuse.

    ``k_in`` subkernels overlap one tile transfer each; the remaining
    ``k - k_in`` subkernels find all tiles resident and cost
    ``t_GPU^T``; pipeline fill/drain add ``t_in + t_out``.

    Two refinements over the literal Eq. 5, both on by default and both
    reducible to the paper's formula (``edge_aware=False,
    bid_aware=False`` with uniform tiles):

    * the steady-state transfer term is computed from the *per-operand*
      steady transfer totals (each fetched operand contributes
      ``tiles_i - 1`` transfers of its own tile size), which also
      absorbs the ``k_in > k`` transfer-bound regime naturally;
    * with ``bid_aware=True``, the fetch-once writebacks of set-flagged
      operands (``tiles_i - 1`` d2h transfers each) are overlapped with
      the steady h2d stream through Eq. 3, so transfer-bound problems
      are charged the bidirectional slowdown the hardware imposes.
      The paper's Eq. 5 ignores d2h entirely, which it notes causes
      occasional high errors.
    """
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    link = models.link
    t_in_steady = 0.0
    t_out_steady = 0.0
    for op in problem.operands:
        n_extra = max(op.tiles(t) - 1, 0)
        if n_extra == 0:
            continue
        nbytes = _operand_tile_bytes(problem, op, t, edge_aware)
        if op.get:
            t_in_steady += n_extra * link.h2d.time(nbytes)
        if op.set:
            t_out_steady += n_extra * link.d2h.time(nbytes)
    if bid_aware:
        transfer_term = bidirectional_overlap_time(
            t_in_steady, t_out_steady, link
        )
    else:
        transfer_term = t_in_steady
    k_in = min(reuse_transfer_subkernels(problem, t), k)
    steady = max(transfer_term, k_in * tt.t_gpu) + tt.t_gpu * (k - k_in)
    return steady + tt.t_in + tt.t_out


# ---------------------------------------------------------------------------
# Analysis bounds: serial floor and ideal-overlap lower bound
# ---------------------------------------------------------------------------

def predict_serial(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> float:
    """No-overlap offload time: all fetches, then all subkernels, then
    all writebacks, with fetch-once volumes.

    Not a paper model — an analysis ceiling: any overlap implementation
    should land below it.
    """
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    link = models.link
    total_in = 0.0
    total_out = 0.0
    for op in problem.operands:
        nbytes = _operand_tile_bytes(problem, op, t, edge_aware)
        n_tiles = op.tiles(t)
        if op.get:
            total_in += n_tiles * link.h2d.time(nbytes)
        if op.set:
            total_out += n_tiles * link.d2h.time(nbytes)
    return total_in + k * tt.t_gpu + total_out


def predict_ideal(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = True,
) -> float:
    """Perfect-overlap lower bound: the busiest engine's total time.

    Not a paper model — an analysis floor: no schedule can beat
    ``max(total h2d, total compute, total d2h)``.  The ratio
    ``predict_ideal / measured`` is the pipeline's overlap efficiency.
    """
    tt = tile_times(problem, t, models, interpolate, edge_aware)
    k = problem.k(t)
    link = models.link
    total_in = 0.0
    total_out = 0.0
    for op in problem.operands:
        nbytes = _operand_tile_bytes(problem, op, t, edge_aware)
        n_tiles = op.tiles(t)
        if op.get:
            total_in += n_tiles * link.h2d.time(nbytes)
        if op.set:
            total_out += n_tiles * link.d2h.time(nbytes)
    return max(total_in, k * tt.t_gpu, total_out)


# ---------------------------------------------------------------------------
# Vectorized candidate sweeps (hot-path pass)
# ---------------------------------------------------------------------------
#
# Tile selection evaluates one model over every benchmarked candidate
# T.  The sweeps below evaluate the BTS and DR models over the whole
# candidate array in one pass of float64 numpy elementwise operations
# that mirror the scalar predictors' operation order exactly — IEEE 754
# elementwise arithmetic on float64 arrays is the same C-double
# arithmetic the scalar path performs, so every swept value is
# *bit-identical* to the corresponding scalar prediction (pinned by
# tests/core/test_predcache.py).  Only the default configuration is
# vectorized (edge_aware=True, no interpolation, no custom
# tile/subkernel counters); everything else falls back to the scalar
# loop in :func:`repro.core.registry.sweep_predict`.


def _sweep_supported(problem: CoCoProblem) -> bool:
    """True when the vectorized sweeps apply to this problem's shapes.

    Routines or operands with custom counting callables (e.g. the
    triangular syrk tiling) use the scalar path.
    """
    if problem.routine.subkernel_count is not None:
        return False
    return all(op.spec.tile_count is None for op in problem.operands)


def _sweep_arrays(
    problem: CoCoProblem, ts: Sequence[int], models: MachineModels
) -> Tuple[np.ndarray, ...]:
    """The edge-aware :func:`tile_times` components over a T array.

    Returns ``(tf, kf, t_gpu, t_in, t_out, op_bytes)`` where the first
    five are float64 arrays over ``ts`` and ``op_bytes`` holds one
    per-operand tile-bytes array in operand order.
    """
    lookup = models.exec_lookup(problem.routine.name,
                                prefix_for(problem.dtype))
    link = models.link
    tf = np.asarray(ts, dtype=np.float64)
    # Gather of the benchmarked kernel times; raises ModelError for an
    # unknown T exactly as the scalar lookup does.
    t_gpu = np.array([lookup.time(t) for t in ts], dtype=np.float64)
    work = np.ones_like(tf)
    for d in problem.dims:
        work = work * (d / (np.ceil(d / tf) * tf))
    t_gpu = t_gpu * work
    kf = np.ones_like(tf)
    for d in problem.dims:
        kf = kf * np.ceil(d / tf)
    t_in = np.zeros_like(tf)
    t_out = np.zeros_like(tf)
    op_bytes: List[np.ndarray] = []
    for op in problem.operands:
        e1 = tf * (op.s1 / (np.ceil(op.s1 / tf) * tf))
        e2 = (1.0 if op.is_vector
              else tf * (op.s2 / (np.ceil(op.s2 / tf) * tf)))
        nbytes = e1 * e2 * problem.elem_size
        op_bytes.append(nbytes)
        if op.get:
            t_in = t_in + (link.h2d.latency
                           + link.h2d.sec_per_byte * nbytes)
        if op.set:
            t_out = t_out + (link.d2h.latency
                             + link.d2h.sec_per_byte * nbytes)
    return tf, kf, t_gpu, t_in, t_out, op_bytes


def _overlap_vec(t_in: np.ndarray, t_out: np.ndarray,
                 link: LinkModel) -> np.ndarray:
    """Elementwise :func:`bidirectional_overlap_time`."""
    t_in_bid = link.h2d.sl * t_in
    t_out_bid = link.d2h.sl * t_out
    return np.where(
        t_in_bid >= t_out_bid,
        t_out_bid + (t_in_bid - t_out_bid) / link.h2d.sl,
        t_in_bid + (t_out_bid - t_in_bid) / link.d2h.sl,
    )


def sweep_bts(problem: CoCoProblem, ts: Sequence[int],
              models: MachineModels) -> List[float]:
    """:func:`predict_bts` over all of ``ts``; bit-identical values."""
    _tf, kf, t_gpu, t_in, t_out, _ = _sweep_arrays(problem, ts, models)
    t_over = _overlap_vec(t_in, t_out, models.link)
    steady = np.maximum(t_gpu, t_over) * (kf - 1.0)
    return (steady + t_in + t_gpu + t_out).tolist()


def sweep_dr(problem: CoCoProblem, ts: Sequence[int],
             models: MachineModels) -> List[float]:
    """:func:`predict_dr` over all of ``ts``; bit-identical values.

    The scalar predictor skips operands whose ``tiles - 1`` count is
    zero; the vectorized form adds their exactly-zero contribution
    instead, which leaves every float64 sum unchanged.
    """
    tf, kf, t_gpu, t_in, t_out, op_bytes = _sweep_arrays(problem, ts,
                                                         models)
    link = models.link
    t_in_steady = np.zeros_like(tf)
    t_out_steady = np.zeros_like(tf)
    reuse = np.zeros_like(tf)
    for op, nbytes in zip(problem.operands, op_bytes):
        n1 = np.ceil(op.s1 / tf)
        n2 = 1.0 if op.is_vector else np.ceil(op.s2 / tf)
        n_extra = np.maximum(n1 * n2 - 1.0, 0.0)
        if op.get:
            t_in_steady = t_in_steady + n_extra * (
                link.h2d.latency + link.h2d.sec_per_byte * nbytes)
            reuse = reuse + n_extra
        if op.set:
            t_out_steady = t_out_steady + n_extra * (
                link.d2h.latency + link.d2h.sec_per_byte * nbytes)
    transfer_term = _overlap_vec(t_in_steady, t_out_steady, link)
    k_in = np.minimum(reuse, kf)
    steady = np.maximum(transfer_term, k_in * t_gpu) + t_gpu * (kf - k_in)
    return (steady + t_in + t_out).tolist()


# ---------------------------------------------------------------------------
# CSO — the comparator model of Werkhoven et al. [11]
# ---------------------------------------------------------------------------

_WORK_EXPONENT = {1: 1, 2: 2, 3: 3}


def _linearized_gpu_time(problem: CoCoProblem, t: int,
                         lookup: ExecLookup) -> float:
    """Kernel time per chunk under the CSO linear-scaling assumption.

    Werkhoven et al. take the *full problem's* kernel time as input and
    divide it evenly across chunks.  Instantiated from the same
    micro-benchmarks as our models (as the paper's comparison does),
    this amounts to scaling the largest benchmarked tile's time — the
    one closest to peak efficiency — down by the work ratio, i.e.
    assuming execution time is linear in the working set.
    """
    sizes = lookup.tile_sizes
    if not sizes:
        raise ModelError("empty execution lookup")
    ref = sizes[-1]
    exp = _WORK_EXPONENT[problem.level]
    return lookup.time(ref) * (t / ref) ** exp


def predict_cso(
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
    edge_aware: bool = False,
) -> float:
    """The CUDA-stream-overlap model with two copy engines of [11].

    Werkhoven et al.'s model takes the amounts to transfer and the
    kernel execution time as *inputs*, so it is instantiated with the
    problem's actual transfer set (get/set flags).  Its restrictions
    relative to the CoCoPeLia models (Section III-A) are structural:
    linear kernel-time scaling, no bidirectional slowdown, and no data
    reuse between subkernels.  It is always evaluated in its literal
    form (no edge-aware correction).
    """
    if t <= 0:
        raise ModelError(f"non-positive tiling size {t}")
    if t > problem.min_dim():
        # The CSO model has no notion of clamped tiles; approximate by
        # clamping T to the smallest dimension.
        t = problem.min_dim()
    tb = problem.tile_bytes(t)
    lookup = models.exec_lookup(problem.routine.name, prefix_for(problem.dtype))
    k = problem.k(t)
    t_h2d_c = problem.n_get() * models.link.h2d.time(tb)
    t_d2h_c = problem.n_set() * models.link.d2h.time(tb)
    t_gpu_c = _linearized_gpu_time(problem, t, lookup)
    dominant = max(k * t_gpu_c, k * t_h2d_c, k * t_d2h_c)
    return dominant + t_h2d_c + t_d2h_c
