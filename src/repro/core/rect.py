"""Rectangular (per-dimension) tiling for level-3 BLAS.

The paper's conclusion lists "extend[ing] the model to more complex
tiling schemes for level-3 BLAS" as future work; this module implements
that extension for gemm.  A :class:`RectTile` splits (D1, D2, D3) with
independent extents (Tm, Tn, Tk), which matters for non-square
problems: a fat-by-thin multiply wants Tk = K (no inner split) with
large output tiles, which square tiling cannot express.

Model: the DR reasoning of Eq. 5 generalizes directly — per-operand
tile byte counts come from the per-dimension extents; the subkernel
execution time is estimated from the square lookup at the equal-volume
cube edge ``(Tm*Tn*Tk)^(1/3)`` (shape effects on the *kernel* are
second-order next to the transfer-geometry effects this extension
targets; the limitation is documented and tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from .instantiation import MachineModels
from .models import bidirectional_overlap_time
from .params import CoCoProblem, prefix_for


@dataclass(frozen=True)
class RectTile:
    """Per-dimension tile extents for gemm: (Tm, Tn, Tk)."""

    tm: int
    tn: int
    tk: int

    def __post_init__(self) -> None:
        if min(self.tm, self.tn, self.tk) <= 0:
            raise ModelError(f"non-positive rect tile {self}")

    @property
    def volume(self) -> int:
        return self.tm * self.tn * self.tk

    @property
    def cube_edge(self) -> float:
        """Edge of the equal-volume cube."""
        return self.volume ** (1.0 / 3.0)

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.tm, self.tn, self.tk)

    @classmethod
    def square(cls, t: int) -> "RectTile":
        return cls(t, t, t)


def _dim_fill(d: int, t: int) -> float:
    return d / (math.ceil(d / t) * t)


def _avg_extent(d: int, t: int) -> float:
    """Average tile extent along one dimension (edge-aware)."""
    return d / math.ceil(d / t)


def rect_tile_counts(problem: CoCoProblem, tile: RectTile
                     ) -> Tuple[int, int, int]:
    """(Mt, Nt, Kt): tiles per dimension."""
    m, n, k = problem.dims
    return (math.ceil(m / tile.tm), math.ceil(n / tile.tn),
            math.ceil(k / tile.tk))


def predict_dr_rect(
    problem: CoCoProblem,
    tile: RectTile,
    models: MachineModels,
) -> float:
    """DR model (Eq. 5 reasoning) generalized to rectangular tiles."""
    if problem.routine.name != "gemm":
        raise ModelError("rectangular tiling is defined for gemm only")
    m, n, k = problem.dims
    mt, nt, kt = rect_tile_counts(problem, tile)
    n_subkernels = mt * nt * kt
    link = models.link
    lookup = models.exec_lookup("gemm", prefix_for(problem.dtype))
    # Average subkernel execution time.  GPU gemm throughput is
    # governed first by the *output-tile* extent (the thread-block grid
    # is Tm x Tn); estimate the achievable FLOP rate from the square
    # lookup at the equivalent output edge sqrt(Tm*Tn) — a cube with
    # that edge has the same block grid — and charge the tile's actual
    # flops at that rate.  (Under-credits very deep K pipelines, which
    # only makes the estimate conservative.)
    em = _avg_extent(m, tile.tm)
    en = _avg_extent(n, tile.tn)
    ek = _avg_extent(k, tile.tk)
    out_edge = max((em * en) ** 0.5, 1.0)
    rate = 2.0 * out_edge ** 3 / lookup.time(int(round(out_edge)),
                                             interpolate=True)
    t_gpu = 2.0 * em * en * ek / rate
    # Per-operand average tile bytes and tile counts.
    es = problem.elem_size
    op_geometry = {
        "A": (_avg_extent(m, tile.tm) * _avg_extent(k, tile.tk) * es,
              mt * kt),
        "B": (_avg_extent(k, tile.tk) * _avg_extent(n, tile.tn) * es,
              kt * nt),
        "C": (_avg_extent(m, tile.tm) * _avg_extent(n, tile.tn) * es,
              mt * nt),
    }
    t_in = 0.0
    t_out = 0.0
    t_in_steady = 0.0
    t_out_steady = 0.0
    k_in = 0
    for op in problem.operands:
        nbytes, tiles = op_geometry[op.name]
        if op.get:
            t_in += link.h2d.time(nbytes)
            t_in_steady += max(tiles - 1, 0) * link.h2d.time(nbytes)
            k_in += max(tiles - 1, 0)
        if op.set:
            t_out += link.d2h.time(nbytes)
            t_out_steady += max(tiles - 1, 0) * link.d2h.time(nbytes)
    k_in = min(k_in, n_subkernels)
    transfer_term = bidirectional_overlap_time(t_in_steady, t_out_steady,
                                               link)
    steady = max(transfer_term, k_in * t_gpu) \
        + t_gpu * (n_subkernels - k_in)
    return steady + t_in + t_out


@dataclass(frozen=True)
class RectChoice:
    """Result of a rectangular tile-size search."""

    tile: RectTile
    predicted_time: float
    evaluations: int
    square_best: RectTile
    square_predicted: float

    @property
    def gain_over_square(self) -> float:
        """Predicted speedup of the rect tile over the best square tile."""
        return self.square_predicted / self.predicted_time


def _dim_candidates(d: int, grid: Sequence[int], cap: int) -> List[int]:
    """Candidate extents along one dimension: benchmarked sizes that
    split the dim at least in half (pipelining), plus the full extent
    (no split) — capped for search-space control."""
    cands = [t for t in grid if t <= d / 1.5]
    cands.append(d)  # allow "do not split this dimension"
    cands = sorted(set(cands))
    if len(cands) > cap:
        idx = [round(i * (len(cands) - 1) / (cap - 1)) for i in range(cap)]
        cands = [cands[i] for i in sorted(set(idx))]
    return cands


def select_rect_tile(
    problem: CoCoProblem,
    models: MachineModels,
    per_dim_cap: int = 6,
    max_subkernels: int = 100_000,
) -> RectChoice:
    """Exhaustive model search over rectangular tile candidates.

    Each dimension draws candidates from the benchmarked square grid
    plus the unsplit extent; predictions are analytic (microseconds
    each), so the full cross product is affordable.
    """
    if problem.routine.name != "gemm":
        raise ModelError("rectangular tiling is defined for gemm only")
    m, n, k = problem.dims
    lookup = models.exec_lookup("gemm", prefix_for(problem.dtype))
    grid = lookup.tile_sizes
    cands_m = _dim_candidates(m, grid, per_dim_cap)
    cands_n = _dim_candidates(n, grid, per_dim_cap)
    cands_k = _dim_candidates(k, grid, per_dim_cap)
    best: Optional[RectTile] = None
    best_time = math.inf
    square_best: Optional[RectTile] = None
    square_time = math.inf
    evaluations = 0
    for tm in cands_m:
        for tn in cands_n:
            for tk in cands_k:
                tile = RectTile(tm, tn, tk)
                mt, nt, kt = rect_tile_counts(problem, tile)
                if mt * nt * kt > max_subkernels:
                    continue
                predicted = predict_dr_rect(problem, tile, models)
                evaluations += 1
                if predicted < best_time:
                    best, best_time = tile, predicted
                if tm == tn == tk and predicted < square_time:
                    square_best, square_time = tile, predicted
    if best is None:
        raise ModelError(
            f"no feasible rectangular tile for dims {problem.dims}"
        )
    if square_best is None:
        # No common square candidate; fall back to the overall best.
        square_best, square_time = best, best_time
    return RectChoice(
        tile=best,
        predicted_time=best_time,
        evaluations=evaluations,
        square_best=square_best,
        square_predicted=square_time,
    )
