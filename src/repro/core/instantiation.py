"""A machine's instantiated model set (the deployment output).

:class:`MachineModels` is what the deployment module produces and the
tile-selection runtime consumes: the fitted link model plus one
execution lookup table per (routine, dtype).  Persistence lives in
:mod:`repro.deploy.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ModelError
from .exec_model import ExecLookup
from .tailbank import PercentileBank
from .transfer_model import LinkModel


@dataclass
class MachineModels:
    """Everything CoCoPeLia knows about a machine after deployment."""

    machine_name: str
    link: LinkModel
    exec_lookups: Dict[Tuple[str, str], ExecLookup] = field(default_factory=dict)
    #: Optional residual-quantile bank (tail prediction); fitted by the
    #: deployment's tail pass and/or refined online while serving.
    tail: Optional[PercentileBank] = None

    def add_exec_lookup(self, lookup: ExecLookup) -> None:
        self.exec_lookups[(lookup.routine, lookup.dtype_prefix)] = lookup

    def exec_lookup(self, routine: str, dtype_prefix: str) -> ExecLookup:
        try:
            return self.exec_lookups[(routine, dtype_prefix)]
        except KeyError:
            available = sorted(
                f"{p}{r}" for (r, p) in self.exec_lookups
            )
            raise ModelError(
                f"machine {self.machine_name!r} has no execution model for "
                f"{dtype_prefix}{routine}; deployed: {available}"
            ) from None

    def has_routine(self, routine: str, dtype_prefix: str) -> bool:
        return (routine, dtype_prefix) in self.exec_lookups

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "machine_name": self.machine_name,
            "link": self.link.to_dict(),
            "exec_lookups": [lk.to_dict() for lk in self.exec_lookups.values()],
        }
        # The tail bank serializes only when present, so databases
        # written before (or without) a tail fit stay byte-identical.
        if self.tail is not None:
            d["tail"] = self.tail.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "MachineModels":
        models = cls(
            machine_name=str(d["machine_name"]),
            link=LinkModel.from_dict(d["link"]),  # type: ignore[arg-type]
        )
        for lk in d.get("exec_lookups", []):  # type: ignore[union-attr]
            models.add_exec_lookup(ExecLookup.from_dict(lk))
        tail = d.get("tail")
        if tail is not None:
            models.tail = PercentileBank.from_dict(tail)  # type: ignore[arg-type]
        return models
