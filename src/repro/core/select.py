"""Tiling-size selection: the CoCoPeLia_select runtime (Section IV-B).

Given a problem and a deployed :class:`MachineModels`, evaluate the
chosen prediction model over the benchmarked candidate tile sizes
(subject to the paper's validity constraint ``T <= min(D)/1.5``) and
return the predicted-best tiling size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ModelError
from .instantiation import MachineModels
from .params import CoCoProblem, prefix_for
from .predcache import PredictionCache
from .registry import resolve_model, sweep_predict

#: The paper evaluates tile sizes no larger than min(D1,D2,D3)/1.5 so a
#: problem always splits into enough tiles to pipeline.
MAX_TILE_FRACTION = 1.5


@dataclass(frozen=True)
class TileChoice:
    """Result of a tile-size selection."""

    t_best: int
    predicted_time: float
    model: str
    per_tile: Dict[int, float] = field(default_factory=dict)

    def predicted_for(self, t: int) -> float:
        return self.per_tile[t]


def candidate_tiles(
    problem: CoCoProblem,
    models: MachineModels,
    min_tile: int = 0,
    clamped: bool = True,
) -> List[int]:
    """Benchmarked tile sizes valid for this problem, ascending.

    With ``clamped=True`` (default) tile sizes may exceed small problem
    dimensions — tiles clamp at the edges and the edge-aware models
    predict them — as long as the *largest* dimension still splits into
    at least ``MAX_TILE_FRACTION`` tiles.  ``clamped=False`` restricts
    to the paper's literal constraint ``T <= min(D)/1.5``.
    """
    lookup = models.exec_lookup(problem.routine.name, prefix_for(problem.dtype))
    bound = max(problem.dims) if clamped else problem.min_dim()
    limit = bound / MAX_TILE_FRACTION
    cands = [t for t in lookup.tile_sizes if min_tile <= t <= limit]
    if not cands:
        # Degenerate small problem: fall back to the largest tile not
        # exceeding the smallest dimension (a single-tile split).
        fitting = [t for t in lookup.tile_sizes if t <= problem.min_dim()]
        if fitting:
            cands = [max(fitting)]
    if not cands:
        raise ModelError(
            f"no benchmarked tile size fits problem dims {problem.dims}; "
            f"benchmarked sizes: {lookup.tile_sizes}"
        )
    return cands


def select_tile(
    problem: CoCoProblem,
    models: MachineModels,
    model: str = "auto",
    min_tile: int = 0,
    interpolate: bool = False,
    cache: Optional[PredictionCache] = None,
    percentile: Optional[float] = None,
) -> TileChoice:
    """Pick the tiling size with the smallest predicted offload time.

    Ties break toward the *larger* tile (fewer subkernels, lower
    scheduling overhead for equal predicted time).

    The candidate sweep is evaluated vectorized for the bts/dr models
    (bit-identical to scalar evaluation); with a ``cache``, repeated
    selections for the same (models, model, problem signature) return
    the memoized :class:`TileChoice` in O(1).

    With ``percentile`` set, the per-tile sweep is inflated by the
    machine's fitted residual-ratio quantile
    (:class:`~repro.core.tailbank.PercentileBank`): ``predicted_time``
    becomes the predicted *p-th percentile* offload time.  The
    multiplier is uniform within a problem's bucket, so ``t_best``
    never moves — only the time scale does.  Machines without a tail
    bank (or buckets without a fit yet) degrade to the mean prediction.
    """
    if cache is not None:
        return cache.choice(problem, models, model=model,
                            min_tile=min_tile, interpolate=interpolate,
                            percentile=percentile)
    if percentile is not None:
        base = select_tile(problem, models, model=model, min_tile=min_tile,
                           interpolate=interpolate)
        return scale_choice(base, problem, models, percentile)
    model_key = resolve_model(model, problem)
    cands = candidate_tiles(problem, models, min_tile=min_tile)
    times = sweep_predict(model_key, problem, cands, models, interpolate)
    per_tile: Dict[int, float] = dict(zip(cands, times))
    t_best = min(sorted(per_tile, reverse=True), key=lambda t: per_tile[t])
    return TileChoice(
        t_best=t_best,
        predicted_time=per_tile[t_best],
        model=model_key,
        per_tile=per_tile,
    )


def scale_choice(
    base: TileChoice,
    problem: CoCoProblem,
    models: MachineModels,
    percentile: float,
) -> TileChoice:
    """A mean :class:`TileChoice` inflated to the ``percentile``-th
    predicted offload time via the machine's tail bank.

    Returns ``base`` unchanged when the machine has no bank or the
    bank's multiplier is 1.0 (no fit yet, or the model over-predicts
    in this bucket), so mean-path callers pay nothing.
    """
    bank = models.tail
    mult = bank.multiplier(problem, percentile) if bank is not None else 1.0
    if mult == 1.0:
        return base
    return TileChoice(
        t_best=base.t_best,
        predicted_time=base.predicted_time * mult,
        model=base.model,
        per_tile={t: v * mult for t, v in base.per_tile.items()},
    )
