"""Prediction-model registry (the CoCoPeLia extension mechanism).

Section IV-B: new models are added by defining a
``CoCoPeLia_predict_[ModelName]`` function.  Here that is a plain
registration: any callable with the shared predictor signature can be
registered under a name and used by the tile-selection runtime.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import ModelError
from .instantiation import MachineModels
from .params import CoCoProblem
from . import models as _models

Predictor = Callable[[CoCoProblem, int, MachineModels, bool], float]

MODEL_REGISTRY: Dict[str, Predictor] = {}


def register_model(name: str, predictor: Predictor,
                   overwrite: bool = False) -> None:
    """Register a predictor under ``name`` (lowercase)."""
    key = name.lower()
    if key in MODEL_REGISTRY and not overwrite:
        raise ModelError(f"model {name!r} is already registered")
    MODEL_REGISTRY[key] = predictor


def available_models() -> List[str]:
    return sorted(MODEL_REGISTRY)


def resolve_model(name: str, problem: CoCoProblem) -> str:
    """Resolve 'auto' to the per-level recommendation of Section III-C:
    BTS (Eq. 4) for level-1/2, DR (Eq. 5) for level-3."""
    key = name.lower()
    if key == "auto":
        return "dr" if problem.level == 3 else "bts"
    if key not in MODEL_REGISTRY:
        raise ModelError(
            f"unknown model {name!r}; available: {available_models()} or 'auto'"
        )
    return key


def predict(
    model_name: str,
    problem: CoCoProblem,
    t: int,
    models: MachineModels,
    interpolate: bool = False,
) -> float:
    """Predict offload time with the named model ('auto' allowed)."""
    key = resolve_model(model_name, problem)
    return MODEL_REGISTRY[key](problem, t, models, interpolate)


def sweep_predict(
    model_name: str,
    problem: CoCoProblem,
    ts: Sequence[int],
    models: MachineModels,
    interpolate: bool = False,
) -> List[float]:
    """Predict offload times for many candidate tile sizes at once.

    Equivalent to ``[predict(model, problem, t, ...) for t in ts]``.
    The bts/dr models take a vectorized path when the problem has no
    custom tile/subkernel counters and no interpolation is requested;
    its values are bit-identical to the scalar evaluation (see the
    sweep note in :mod:`repro.core.models`), so callers never observe
    which path ran.
    """
    key = resolve_model(model_name, problem)
    if (not interpolate and key in ("bts", "dr")
            and _models._sweep_supported(problem)):
        sweep = _models.sweep_bts if key == "bts" else _models.sweep_dr
        return sweep(problem, ts, models)
    predictor = MODEL_REGISTRY[key]
    return [predictor(problem, t, models, interpolate) for t in ts]


# Built-in models.
register_model("cso", _models.predict_cso)
register_model("baseline", _models.predict_baseline)
register_model("dataloc", _models.predict_dataloc)
register_model("bts", _models.predict_bts)
register_model("dr", _models.predict_dr)
# Analysis bounds (not selectors from the paper; useful for reports).
register_model("serial", _models.predict_serial)
register_model("ideal", _models.predict_ideal)
