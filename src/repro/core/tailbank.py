"""Per-(machine, percentile) residual-quantile bank: tail prediction.

The paper validates the *mean* prediction error (Figs. 4/5 e%), and the
serving stack built on top of it — dispatcher scoring, shed/downgrade
admission, cluster routing, autoscaling — consumed the mean ``T_pred``
unchanged.  At production traffic the tail is what breaks SLOs: a
request whose *p99* completion time blows its deadline should be shed
even when the mean prediction squeaks under.

:class:`PercentileBank` treats model error as a distribution-shaped
signal rather than a scalar (the ``MultiPredictor`` per-(hw, percentile)
pattern).  It accumulates **residual ratios** ``observed / predicted``
per problem bucket — keyed ``(routine, dtype prefix, flops decade)`` so
a tiny daxpy and a giant dgemm never share a distribution — and fits
the configured percentiles of each bucket with the same
``np.percentile`` math every report in this repo uses.  The fitted
quantile at percentile ``p`` answers: "by what factor does the observed
latency exceed the prediction at the p-th percentile?"

Two fit paths share one bank:

* **deployment fit** (:mod:`repro.deploy.tailfit`): seeded measured
  runs at deployment time seed the quantiles, persisted alongside the
  model database (``MachineModels.tail``, an optional key so existing
  databases stay byte-identical);
* **online refinement**: a serving run feeds every completed request's
  end-to-end ``(predicted latency, observed latency)`` pair back into
  the bank on a deterministic count-based schedule — every
  ``refit_every`` observations per bucket the quantiles are recomputed
  from a bounded window.  No wall clock, no randomness: the same seed
  produces the same observation sequence, so same-seed documents stay
  byte-identical.

Determinism rules (pinned by ``tests/core/test_tailbank.py``):

* refits fire only on the count schedule (never on time or size
  heuristics that could race), and :attr:`version` bumps on every
  refit so memoized tail predictions invalidate exactly then;
* buckets iterate in sorted order wherever aggregate output
  (``snapshot``/``to_dict``/``refit_all``) is produced;
* :meth:`multiplier` is read-only and clamps at 1.0 — tail-aware
  admission may only be *more* conservative than the mean path, never
  admit work the mean path would shed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from .params import CoCoProblem, prefix_for

#: Percentiles every bank fits by default (p50/p95/p99) — the same
#: trio the serve/cluster latency summaries report.
TAIL_PERCENTILES = (50.0, 95.0, 99.0)

#: Catch-all bucket fed by every observation; the fallback when a
#: problem's own bucket has not accumulated a fit yet.
GLOBAL_BUCKET: Tuple[str, str, int] = ("*", "*", -1)

BucketKey = Tuple[str, str, int]


def tail_bucket(problem: CoCoProblem) -> BucketKey:
    """The residual bucket a problem's observations land in.

    ``(routine, dtype prefix, flops decade)``: coarse enough that a
    serving run populates its buckets quickly, fine enough that the
    error distribution of a batched tiny gemm never contaminates the
    tail of a paper-scale one.
    """
    flops = problem.flops()
    decade = int(math.floor(math.log10(flops))) if flops > 0 else 0
    return (problem.routine.name, prefix_for(problem.dtype), decade)


class PercentileBank:
    """Residual-ratio quantiles per problem bucket, refit online.

    All mutation happens through :meth:`observe` (count-scheduled
    refits), :meth:`refit_all` (deployment fit) and
    :meth:`ensure_percentile` (admission setup); given the same call
    sequence two banks are state-identical, which is what keeps
    same-seed serving documents byte-identical.
    """

    def __init__(
        self,
        percentiles: Sequence[float] = TAIL_PERCENTILES,
        window: int = 512,
        refit_every: int = 32,
    ) -> None:
        ps: List[float] = []
        for p in percentiles:
            f = float(p)
            if math.isnan(f) or not 0.0 < f <= 100.0:
                raise ReproError(
                    f"tail percentile outside (0, 100]: {p}")
            if f not in ps:
                ps.append(f)
        if not ps:
            raise ReproError("a PercentileBank needs >= 1 percentile")
        if not isinstance(refit_every, int) or refit_every < 1:
            raise ReproError(
                f"refit_every must be a positive int: {refit_every}")
        if not isinstance(window, int) or window < refit_every:
            raise ReproError(
                f"window ({window}) must be an int >= refit_every "
                f"({refit_every})")
        self.percentiles: Tuple[float, ...] = tuple(sorted(ps))
        self.window = window
        self.refit_every = refit_every
        #: Bounded recent-ratio buffers per bucket (online refinement).
        self._samples: Dict[BucketKey, List[float]] = {}
        #: Lifetime observation count per bucket (drives the schedule;
        #: deliberately NOT window-capped).
        self._counts: Dict[BucketKey, int] = {}
        #: Fitted percentile -> ratio quantile per bucket.
        self._fits: Dict[BucketKey, Dict[float, float]] = {}
        self.observations = 0
        self.refits = 0
        #: Bumped on every refit; memo keys include it so cached tail
        #: predictions invalidate exactly when the fits move.
        self.version = 0

    # -- observation & fitting -----------------------------------------

    def observe(self, problem: CoCoProblem, predicted: float,
                observed: float) -> None:
        """Fold one (predicted, observed) latency pair into the bank.

        Non-positive or non-finite pairs are ignored — a shed request
        has no observed latency, and a zero prediction has no ratio.
        """
        if not (predicted > 0 and observed > 0):
            return
        if not (math.isfinite(predicted) and math.isfinite(observed)):
            return
        ratio = observed / predicted
        for bucket in (tail_bucket(problem), GLOBAL_BUCKET):
            buf = self._samples.setdefault(bucket, [])
            buf.append(ratio)
            if len(buf) > self.window:
                del buf[: len(buf) - self.window]
            count = self._counts.get(bucket, 0) + 1
            self._counts[bucket] = count
            if count % self.refit_every == 0:
                self._refit(bucket)
        self.observations += 1

    def _refit(self, bucket: BucketKey) -> None:
        buf = self._samples.get(bucket)
        if not buf:
            return
        values = np.percentile(np.asarray(buf, dtype=np.float64),
                               list(self.percentiles))
        self._fits[bucket] = {
            p: float(v) for p, v in zip(self.percentiles, values)
        }
        self.refits += 1
        self.version += 1

    def refit_all(self) -> None:
        """Force-fit every bucket with samples (deployment-fit path)."""
        for bucket in sorted(self._samples):
            self._refit(bucket)

    def ensure_percentile(self, percentile: float) -> None:
        """Make sure ``percentile`` is fitted (admission setup).

        Adding a new percentile refits every sampled bucket so
        :meth:`multiplier` reads it immediately; buckets carrying only
        deserialized fits (no samples) pick it up at their next
        scheduled refit.
        """
        p = float(percentile)
        if math.isnan(p) or not 0.0 < p <= 100.0:
            raise ReproError(f"tail percentile outside (0, 100]: {percentile}")
        if p in self.percentiles:
            return
        self.percentiles = tuple(sorted(self.percentiles + (p,)))
        self.refit_all()

    # -- lookups --------------------------------------------------------

    def _fit_for(self, problem: CoCoProblem) -> Optional[Dict[float, float]]:
        fit = self._fits.get(tail_bucket(problem))
        if fit is None:
            fit = self._fits.get(GLOBAL_BUCKET)
        return fit

    def quantile(self, problem: CoCoProblem,
                 percentile: float) -> Optional[float]:
        """The raw fitted residual-ratio quantile (no clamp), or None
        when neither the problem's bucket nor the global bucket has a
        fit for ``percentile``."""
        fit = self._fit_for(problem)
        if fit is None:
            return None
        return fit.get(float(percentile))

    def multiplier(self, problem: CoCoProblem, percentile: float) -> float:
        """Admission inflation factor at ``percentile`` (always >= 1).

        The clamp keeps tail-aware admission one-sided: a bucket whose
        model *over*-predicts (ratio quantile < 1) falls back to the
        mean prediction instead of admitting work the mean path would
        shed.  Unknown buckets/percentiles return 1.0 — the bank
        degrades to exactly the mean-based behavior until it has data.
        """
        value = self.quantile(problem, percentile)
        if value is None:
            return 1.0
        return value if value > 1.0 else 1.0

    # -- reporting & persistence ---------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for the ``prediction.tail`` report block."""
        buckets = []
        for bucket in sorted(self._fits):
            routine, dtype, decade = bucket
            buckets.append({
                "routine": routine,
                "dtype": dtype,
                "flops_decade": decade,
                "n": self._counts.get(bucket, 0),
                "quantiles": {
                    f"p{p:g}": v
                    for p, v in sorted(self._fits[bucket].items())
                },
            })
        return {
            "percentiles": [float(p) for p in self.percentiles],
            "observations": self.observations,
            "refits": self.refits,
            "buckets": buckets,
        }

    def to_dict(self) -> Dict[str, object]:
        """Persistable state (fits only — sample windows are not kept,
        a reloaded bank refines onward from the fitted quantiles)."""
        return {
            "percentiles": [float(p) for p in self.percentiles],
            "window": self.window,
            "refit_every": self.refit_every,
            "observations": self.observations,
            "refits": self.refits,
            "fits": [
                {
                    "bucket": list(bucket),
                    "n": self._counts.get(bucket, 0),
                    "quantiles": {
                        f"{p:g}": v
                        for p, v in sorted(self._fits[bucket].items())
                    },
                }
                for bucket in sorted(self._fits)
            ],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PercentileBank":
        bank = cls(
            percentiles=[float(p) for p in d["percentiles"]],
            window=int(d.get("window", 512)),
            refit_every=int(d.get("refit_every", 32)),
        )
        bank.observations = int(d.get("observations", 0))
        bank.refits = int(d.get("refits", 0))
        for entry in d.get("fits", []):
            routine, dtype, decade = entry["bucket"]
            bucket = (str(routine), str(dtype), int(decade))
            bank._counts[bucket] = int(entry.get("n", 0))
            bank._fits[bucket] = {
                float(p): float(v)
                for p, v in entry["quantiles"].items()
            }
        return bank
