"""Overlap prediction for the distributed routines (SUMMA, streaming gemv).

Extends the paper's single-GPU 3-way-concurrency models to workloads
whose communication happens on the *inter-GPU* fabric:

* :func:`predict_summa` — makespan of the 1D-SUMMA distributed gemm of
  ``repro.runtime.summa`` for a given K-panel width ``p``: a pipeline
  recurrence over panels where each panel's arrival is limited by the
  broadcast chain rate (one panel per link slot) and by the
  double-buffer injection gate, and compute follows in panel order on
  the widest column shard.  The ``blocking`` variant serializes each
  panel's full broadcast before its kernels (the baseline the paper's
  Fig. 2 serial pipeline corresponds to).
* :func:`predict_streaming_gemv` — makespan of the distributed
  streaming gemv: per-GPU chunked h2d streams (x chunk + A panel per
  chunk over the GPU's own PCIe lane) overlapped with per-chunk gemv
  kernels, followed by a ring reduction of the partial ``y`` vectors
  and the final d2h.

Both predictors follow the repo's core discipline: they see only the
*deployed* artifacts — exec lookup tables, fitted PCIe link models, and
the interconnect's :class:`~repro.sim.interconnect.TopologySpec` (the
fabric's published description) — never the simulator's ground-truth
kernel formulas.  Panel/chunk compute time reuses the lookup-table +
``_dim_fill`` edge scaling of :mod:`repro.core.models`.

Topology objects are duck-typed (``kind``/``n_gpus``/``hop_time``/
``broadcast_hops``/``signature``) so this package does not import
``repro.sim``; the runtime passes the spec through.

Selection (:func:`select_summa_panel` / :func:`select_gemv_chunk`)
sweeps the benchmarked tile grid exactly like ``select_tile`` — ties
break to the larger candidate — and is memoized by
:meth:`~repro.core.predcache.PredictionCache.distributed_choice`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ModelError, SchedulerError
from .instantiation import MachineModels
from .models import _dim_fill
from .params import CoCoProblem, prefix_for

SUMMA_VARIANTS = ("pipelined", "blocking")


def shard_columns(n: int, n_gpus: int) -> List[Tuple[int, int]]:
    """(offset, width) of each GPU's column block (ceil-balanced).

    The canonical sharding used by every distributed routine; re-exported
    by ``repro.runtime.multigpu`` for backward compatibility.
    """
    if n_gpus <= 0:
        raise SchedulerError(f"need at least one GPU, got {n_gpus}")
    base = math.ceil(n / n_gpus)
    shards = []
    off = 0
    while off < n:
        width = min(base, n - off)
        shards.append((off, width))
        off += width
    return shards


def summa_panels(k: int, n_gpus: int,
                 p: int) -> List[Tuple[int, int, int]]:
    """(k_offset, width, owner) of each SUMMA K-panel.

    ``A`` is K-sharded across the GPUs with :func:`shard_columns`; each
    shard is sub-split into panels of width ``p``, so a panel never
    spans two owners (its broadcast has a single root).
    """
    if p <= 0:
        raise ModelError(f"panel width must be positive, got {p}")
    panels: List[Tuple[int, int, int]] = []
    for owner, (off, width) in enumerate(shard_columns(k, n_gpus)):
        sub = 0
        while sub < width:
            w = min(p, width - sub)
            panels.append((off + sub, w, owner))
            sub += w
    return panels


def _itemsize(problem: CoCoProblem) -> int:
    return np.dtype(problem.dtype).itemsize


def _require_topology(topology, n_gpus: int):
    if topology is None:
        raise ModelError("distributed prediction requires a topology spec")
    if topology.n_gpus != n_gpus:
        raise ModelError(
            f"topology is wired for {topology.n_gpus} GPUs, "
            f"prediction asked for {n_gpus}")
    return topology


# ---------------------------------------------------------------------------
# SUMMA gemm
# ---------------------------------------------------------------------------

def predict_summa(
    problem: CoCoProblem,
    p: int,
    models: MachineModels,
    interpolate: bool = False,
    *,
    n_gpus: int,
    topology,
    variant: str = "pipelined",
    depth: int = 2,
) -> float:
    """Predicted SUMMA makespan for K-panel width ``p`` (seconds).

    Mirrors the runtime exactly: per panel, the owner broadcasts the
    ``M x p`` slice of A (``broadcast_hops`` serial link slots until
    the farthest GPU holds it), every GPU then runs a
    ``ceil(M/p) x ceil(w/p)`` grid of ``p``-edge kernels on its column
    shard; panels proceed in order with at most ``depth`` broadcasts
    in flight past the globally-computed frontier.
    """
    if variant not in SUMMA_VARIANTS:
        raise ModelError(
            f"unknown SUMMA variant {variant!r}; expected {SUMMA_VARIANTS}")
    if depth < 2:
        raise ModelError(f"pipelined SUMMA needs depth >= 2, got {depth}")
    topology = _require_topology(topology, n_gpus)
    m, n, k = problem.dims
    elem = _itemsize(problem)
    lookup = models.exec_lookup("gemm", prefix_for(problem.dtype))
    t_tile = lookup.time(p, interpolate)
    w_max = max(w for _, w in shard_columns(n, n_gpus))
    # ceil(d/p) * _dim_fill(d, p) == d / p: the edge-tile linear scaling
    # of models.tile_times in closed form.
    tiles_mw = (math.ceil(m / p) * _dim_fill(m, p)
                * math.ceil(w_max / p) * _dim_fill(w_max, p))
    panels = summa_panels(k, n_gpus, p)
    d_hops = topology.broadcast_hops(n_gpus - 1)

    def t_hop(pw: int) -> float:
        return topology.hop_time(m * pw * elem)

    def t_comp(pw: int) -> float:
        return t_tile * tiles_mw * (pw / p)

    if variant == "blocking":
        return sum(d_hops * t_hop(pw) + t_comp(pw) for _, pw, _ in panels)

    # Pipelined: arrival is chain-rate limited (one panel per link slot
    # once the d_hops fill is paid) and gated by the depth buffer;
    # compute is in panel order on the widest shard.
    finishes: List[float] = []
    arrive = 0.0
    for j, (_off, pw, _owner) in enumerate(panels):
        if j == 0:
            arrive = d_hops * t_hop(pw)
        else:
            arrive = arrive + t_hop(pw)
        if j >= depth:
            arrive = max(arrive, finishes[j - depth] + d_hops * t_hop(pw))
        start = arrive if not finishes else max(arrive, finishes[-1])
        finishes.append(start + t_comp(pw))
    return finishes[-1]


# ---------------------------------------------------------------------------
# streaming gemv
# ---------------------------------------------------------------------------

def _axpy_add_time(models: MachineModels, m: int, prefix: str,
                   interpolate: bool) -> float:
    """Model time of the reduction add (``y += partial``, length m)."""
    if not models.has_routine("axpy", prefix):
        return 0.0  # reduce-add unmodeled: negligible next to the stream
    lookup = models.exec_lookup("axpy", prefix)
    tiles = [t for t in lookup.tile_sizes if t <= m]
    t0 = max(tiles) if tiles else min(lookup.tile_sizes)
    return lookup.time(t0, interpolate) * (m / t0)


def predict_streaming_gemv(
    problem: CoCoProblem,
    c: int,
    models: MachineModels,
    interpolate: bool = False,
    *,
    n_gpus: int = 1,
    topology=None,
) -> float:
    """Predicted streaming-gemv makespan for chunk width ``c`` (seconds).

    Per GPU: its column shard of A (and of x) streams over its own
    PCIe lane in width-``c`` chunks — an x chunk then the ``M x c`` A
    panel — while ``ceil(M/c)`` row-tile gemv kernels consume each
    chunk as it lands.  Partial ``y`` vectors then ring-reduce to GPU 0
    (hop + add per step) and the result is read back over d2h.
    """
    if c <= 0:
        raise ModelError(f"chunk width must be positive, got {c}")
    if n_gpus > 1:
        topology = _require_topology(topology, n_gpus)
    m, n = problem.dims
    elem = _itemsize(problem)
    prefix = prefix_for(problem.dtype)
    lookup = models.exec_lookup("gemv", prefix)
    t_tile = lookup.time(c, interpolate)
    tiles_m = math.ceil(m / c) * _dim_fill(m, c)
    link = models.link

    def chunk_widths(width: int) -> List[int]:
        out = []
        sub = 0
        while sub < width:
            out.append(min(c, width - sub))
            sub += c
        return out

    finishes: List[float] = []
    for _off, width in shard_columns(n, n_gpus):
        arrive = 0.0
        finish = 0.0
        for cw in chunk_widths(width):
            arrive += (link.h2d.time(cw * elem)
                       + link.h2d.time(m * cw * elem))
            t_comp = t_tile * tiles_m * (cw / c)
            finish = max(arrive, finish) + t_comp
        finishes.append(finish)
    # n < n_gpus leaves trailing GPUs with empty shards (finish at 0).
    finishes += [0.0] * (n_gpus - len(finishes))

    t_add = _axpy_add_time(models, m, prefix, interpolate)
    if n_gpus == 1:
        total = finishes[0]
    else:
        # Reduce chain 1 -> 2 -> ... -> (G-1) -> 0, clockwise hops.
        hop = topology.hop_time(m * elem)
        t = finishes[1 % n_gpus]
        for g in list(range(2, n_gpus)) + [0]:
            t = max(t + hop, finishes[g]) + t_add
        total = t
    return total + link.d2h.time(m * elem)


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------

@dataclass
class DistributedChoice:
    """Winner of a panel/chunk sweep (mirrors ``TileChoice``)."""

    value: int
    predicted_time: float
    per_candidate: Dict[int, float]
    kind: str  # "summa" | "streaming_gemv"


def candidate_panels(problem: CoCoProblem, n_gpus: int,
                     models: MachineModels) -> List[int]:
    """Benchmarked gemm tile sizes usable as SUMMA K-panel widths."""
    m, n, k = problem.dims
    tiles = models.exec_lookup("gemm", prefix_for(problem.dtype)).tile_sizes
    w_max = max(w for _, w in shard_columns(n, n_gpus))
    k_max = max(w for _, w in shard_columns(k, n_gpus))
    # A panel wider than the owner's K-shard just gets clamped, and a
    # kernel edge beyond the column shard never tiles: cap so kernels
    # stay near the cubic shapes the lookup table was benchmarked on.
    limit = min(m, w_max, k_max)
    cands = [t for t in tiles if t <= limit]
    return cands or [min(tiles)]


def candidate_chunks(problem: CoCoProblem, n_gpus: int,
                     models: MachineModels) -> List[int]:
    """Benchmarked gemv tile sizes usable as streaming chunk widths."""
    _m, n = problem.dims
    w_max = max(w for _, w in shard_columns(n, n_gpus))
    tiles = models.exec_lookup("gemv", prefix_for(problem.dtype)).tile_sizes
    cands = [t for t in tiles if t <= w_max]
    return cands or [min(tiles)]


def _sweep(cands: List[int], predict) -> DistributedChoice:
    per: Dict[int, float] = {t: predict(t) for t in sorted(cands)}
    best = None
    best_t = None
    for t, seconds in per.items():
        # ties break to the larger candidate, like select_tile
        if best is None or seconds <= best:
            best = seconds
            best_t = t
    return DistributedChoice(value=best_t, predicted_time=best,
                             per_candidate=per, kind="")


def select_summa_panel(
    problem: CoCoProblem,
    n_gpus: int,
    topology,
    models: MachineModels,
    variant: str = "pipelined",
    depth: int = 2,
    interpolate: bool = False,
    cache=None,
) -> DistributedChoice:
    """Model-selected SUMMA K-panel width over the benchmarked grid."""
    if cache is not None:
        return cache.distributed_choice(
            "summa", problem, models, topology, n_gpus,
            variant=variant, depth=depth, interpolate=interpolate)
    choice = _sweep(
        candidate_panels(problem, n_gpus, models),
        lambda p: predict_summa(problem, p, models, interpolate,
                                n_gpus=n_gpus, topology=topology,
                                variant=variant, depth=depth))
    choice.kind = "summa"
    return choice


def select_gemv_chunk(
    problem: CoCoProblem,
    n_gpus: int,
    topology,
    models: MachineModels,
    interpolate: bool = False,
    cache=None,
) -> DistributedChoice:
    """Model-selected streaming-gemv chunk width."""
    if cache is not None:
        return cache.distributed_choice(
            "streaming_gemv", problem, models, topology, n_gpus,
            interpolate=interpolate)
    choice = _sweep(
        candidate_chunks(problem, n_gpus, models),
        lambda c: predict_streaming_gemv(problem, c, models, interpolate,
                                         n_gpus=n_gpus, topology=topology))
    choice.kind = "streaming_gemv"
    return choice
