"""Semi-empirical transfer-time sub-models (paper Section IV-A).

The latency/bandwidth form the deployment module fits:

    t_h2d(bytes) = t_l + t_b * bytes            (unidirectional)
    t_h2d_bid    = sl  * t_h2d                  (opposite link busy)

One :class:`TransferFit` per direction; a :class:`LinkModel` bundles the
two directions plus fit diagnostics (RSE, p-values) for the Table II
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ModelError
from ..units import GIGA


@dataclass(frozen=True)
class TransferFit:
    """Fitted coefficients for one transfer direction.

    latency
        ``t_l`` in seconds (mean of single-byte transfer probes).
    sec_per_byte
        ``t_b`` in s/byte from the zero-intercept least-squares fit.
    sl
        Bidirectional slowdown factor (>= 1).
    rse / rse_bid
        Residual standard errors of the uni/bidirectional fits.
    p_value / p_value_bid
        Coefficient p-values of the fits.
    samples
        Number of regression samples used.
    """

    latency: float
    sec_per_byte: float
    sl: float = 1.0
    rse: float = 0.0
    rse_bid: float = 0.0
    p_value: float = 0.0
    p_value_bid: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ModelError(f"negative fitted latency: {self.latency}")
        if self.sec_per_byte <= 0:
            raise ModelError(f"non-positive fitted t_b: {self.sec_per_byte}")
        if self.sl < 1.0:
            raise ModelError(f"bidirectional slowdown < 1: {self.sl}")

    @property
    def bandwidth(self) -> float:
        """``1/t_b`` in bytes/second."""
        return 1.0 / self.sec_per_byte

    @property
    def bandwidth_gb(self) -> float:
        return self.bandwidth / GIGA

    def time(self, nbytes: float) -> float:
        """Predicted unidirectional transfer time."""
        if nbytes < 0:
            raise ModelError(f"negative transfer size: {nbytes}")
        return self.latency + self.sec_per_byte * nbytes

    def time_bid(self, nbytes: float) -> float:
        """Predicted transfer time with the opposite link in use."""
        return self.sl * self.time(nbytes)

    def to_dict(self) -> Dict[str, float]:
        return {
            "latency": self.latency,
            "sec_per_byte": self.sec_per_byte,
            "sl": self.sl,
            "rse": self.rse,
            "rse_bid": self.rse_bid,
            "p_value": self.p_value,
            "p_value_bid": self.p_value_bid,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "TransferFit":
        return cls(
            latency=d["latency"],
            sec_per_byte=d["sec_per_byte"],
            sl=d.get("sl", 1.0),
            rse=d.get("rse", 0.0),
            rse_bid=d.get("rse_bid", 0.0),
            p_value=d.get("p_value", 0.0),
            p_value_bid=d.get("p_value_bid", 0.0),
            samples=int(d.get("samples", 0)),
        )


@dataclass(frozen=True)
class LinkModel:
    """The six system-wide transfer parameters of Section IV-A:
    (t_l, t_b, sl) for h2d and d2h."""

    h2d: TransferFit
    d2h: TransferFit

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {"h2d": self.h2d.to_dict(), "d2h": self.d2h.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, Dict[str, float]]) -> "LinkModel":
        return cls(
            h2d=TransferFit.from_dict(d["h2d"]),
            d2h=TransferFit.from_dict(d["d2h"]),
        )
