"""CoCoPeLia's core contribution: 3-way-concurrency prediction models.

This package implements Section III of the paper:

* :mod:`~repro.core.params` — the model-parameter struct of Table I
  (problem dims, operand sizes/locations, get/set flags, dtype).
* :mod:`~repro.core.transfer_model` — semi-empirical latency/bandwidth
  transfer sub-models with bidirectional slowdown factors.
* :mod:`~repro.core.exec_model` — the empirical lookup table for tiled
  kernel execution time ``t_GPU^T``.
* :mod:`~repro.core.models` — Eq. 1 (baseline), Eq. 2 (data location),
  Eq. 3+4 (bidirectional-slowdown, "BTS"), Eq. 5 (data reuse, "DR"),
  and the comparator CSO model of Werkhoven et al.
* :mod:`~repro.core.select` — tiling-size selection (CoCoPeLia_select).
* :mod:`~repro.core.registry` — the extension mechanism for new
  prediction models (CoCoPeLia_predict_[ModelName]).
"""

from .params import (
    Loc,
    OperandInstance,
    CoCoProblem,
    gemm_problem,
    gemv_problem,
    axpy_problem,
    syrk_problem,
)
from .transfer_model import TransferFit, LinkModel
from .exec_model import ExecLookup
from .instantiation import MachineModels
from .models import (
    predict_baseline,
    predict_dataloc,
    predict_bts,
    predict_dr,
    predict_cso,
    bidirectional_overlap_time,
)
from .registry import MODEL_REGISTRY, register_model, predict
from .distributed import (
    DistributedChoice,
    SUMMA_VARIANTS,
    candidate_chunks,
    candidate_panels,
    predict_streaming_gemv,
    predict_summa,
    select_gemv_chunk,
    select_summa_panel,
    shard_columns,
    summa_panels,
)
from .select import TileChoice, candidate_tiles, scale_choice, select_tile
from .rect import RectTile, RectChoice, predict_dr_rect, select_rect_tile
from .predcache import PredCacheStats, PredictionCache
from .tailbank import (
    GLOBAL_BUCKET,
    TAIL_PERCENTILES,
    PercentileBank,
    tail_bucket,
)

__all__ = [
    "Loc",
    "OperandInstance",
    "CoCoProblem",
    "gemm_problem",
    "gemv_problem",
    "axpy_problem",
    "syrk_problem",
    "TransferFit",
    "LinkModel",
    "ExecLookup",
    "MachineModels",
    "predict_baseline",
    "predict_dataloc",
    "predict_bts",
    "predict_dr",
    "predict_cso",
    "bidirectional_overlap_time",
    "MODEL_REGISTRY",
    "register_model",
    "predict",
    "DistributedChoice",
    "SUMMA_VARIANTS",
    "candidate_chunks",
    "candidate_panels",
    "predict_streaming_gemv",
    "predict_summa",
    "select_gemv_chunk",
    "select_summa_panel",
    "shard_columns",
    "summa_panels",
    "TileChoice",
    "candidate_tiles",
    "scale_choice",
    "select_tile",
    "PredCacheStats",
    "PredictionCache",
    "GLOBAL_BUCKET",
    "TAIL_PERCENTILES",
    "PercentileBank",
    "tail_bucket",
    "RectTile",
    "RectChoice",
    "predict_dr_rect",
    "select_rect_tile",
]
