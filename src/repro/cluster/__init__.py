"""Cluster-scale serving: a sharded multi-node fleet with a
model-guided autoscaler.

One node = one of today's single-node servers (own simulator clock,
dispatcher, health monitor), opened in incremental mode.  The layers
on top:

* :mod:`repro.cluster.router` — consistent-hash sharding by weight
  group with bounded spill, scored by **predicted backlog** (the
  CoCoPeLia models' admission-time predictions), not queue length;
* :mod:`repro.cluster.autoscaler` — scale decisions from an arrival-
  rate EWMA × predicted-service EWMA demand model plus a predicted-
  backlog pressure valve; graceful drain on the way down;
* :mod:`repro.cluster.coordinator` — deterministic lock-step epoch
  barriers over the per-node clocks (same seed → byte-identical
  fleet reports);
* :mod:`repro.cluster.workload` — streamed, phased, memory-bounded
  million-request traces;
* :mod:`repro.cluster.report` — the versioned ``repro.cluster/v1``
  document and its validator.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .coordinator import ClusterConfig, ClusterCoordinator, ClusterOutcome
from .node import NODE_STATES, ClusterNode
from .report import (
    CLUSTER_SCHEMA_VERSION,
    cluster_document,
    cluster_report,
    dump_cluster_document,
    validate_cluster_json,
)
from .router import ROUTER_POLICIES, ClusterRouter
from .workload import (
    ClusterWorkloadSpec,
    cluster_arrivals,
    cluster_spec_as_dict,
    iter_cluster_workload,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterOutcome",
    "NODE_STATES",
    "ClusterNode",
    "CLUSTER_SCHEMA_VERSION",
    "cluster_document",
    "cluster_report",
    "dump_cluster_document",
    "validate_cluster_json",
    "ROUTER_POLICIES",
    "ClusterRouter",
    "ClusterWorkloadSpec",
    "cluster_arrivals",
    "cluster_spec_as_dict",
    "iter_cluster_workload",
]
