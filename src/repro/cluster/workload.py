"""Cluster-scale open-loop workload: streamed, phased, memory-bounded.

The single-node generator (:mod:`repro.serve.workload`) materializes
its whole request list and builds a fresh :class:`CoCoProblem` per
request — fine for thousands of requests, hopeless for the million-
request traces the cluster benchmark sustains.  This generator

* pre-draws every random factor **vectorized** into flat numpy arrays
  (a million float64 arrivals is 8 MB, not a million Python objects),
* *memoizes problems*: all requests at one (routine, dims) share one
  immutable :class:`CoCoProblem`, so the problem pool stays a few
  dozen objects regardless of trace length, and
* yields :class:`~repro.serve.request.Request` objects lazily, in
  arrival order, so peak live requests are bounded by fleet backlog
  (the coordinator drops them once terminal), not trace length.

Determinism follows the repo's substream idiom — one
``default_rng([index, seed])`` stream per random factor, drawn in one
bulk call each, so the trace is a pure function of the spec.

Phased rates drive the autoscaler: the trace is split into
``len(phases)`` contiguous chunks and chunk *i* arrives at
``rate * phases[i]``.  A (1.0, 2.5, 0.4) profile gives the fleet a
steady start, a sustained surge (predicted backlog climbs ahead of the
queues → scale-up), and a lull (scale-down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.params import CoCoProblem, axpy_problem, gemm_problem
from ..serve.request import Request, ServeError
from ..serve.workload import (
    ARRIVAL_KINDS,
    WorkloadSpec,
    _FACTOR_STREAMS,
    _size_pools,
    reference_time,
)


@dataclass(frozen=True)
class ClusterWorkloadSpec:
    """Everything that determines a cluster trace (seed → same bytes)."""

    arrival: str = "bursty"
    rate: float = 400.0              #: base arrival rate, requests/s
    n_requests: int = 20_000
    scale: str = "tiny"
    seed: int = 0
    axpy_fraction: float = 0.2
    small_fraction: float = 0.5
    n_groups: int = 64               #: weight groups (sharding keys)
    n_priorities: int = 2
    deadline_fraction: float = 0.75
    slack_lo: float = 2.0
    slack_hi: float = 8.0
    burst_size: int = 32             #: requests per burst ("bursty")
    burst_spread: float = 0.02
    #: Per-phase rate multipliers over equal contiguous chunks of the
    #: trace; (1.0,) is a flat trace.
    phases: Tuple[float, ...] = (1.0, 2.5, 0.4)

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ServeError(
                f"unknown arrival process {self.arrival!r}; "
                f"valid: {ARRIVAL_KINDS}")
        if self.rate <= 0:
            raise ServeError(f"non-positive arrival rate: {self.rate}")
        if self.n_requests <= 0:
            raise ServeError(f"non-positive request count: {self.n_requests}")
        if not self.phases or any(m <= 0 for m in self.phases):
            raise ServeError(f"phases must be positive: {self.phases}")
        if self.burst_size <= 0:
            raise ServeError(f"non-positive burst size: {self.burst_size}")
        if self.slack_lo > self.slack_hi:
            raise ServeError(
                f"slack_lo {self.slack_lo} > slack_hi {self.slack_hi}")
        # Reuse the single-node spec's scale/fraction validation.
        WorkloadSpec(arrival=self.arrival, rate=self.rate,
                     n_requests=self.n_requests, scale=self.scale,
                     axpy_fraction=self.axpy_fraction,
                     burst_size=self.burst_size)


def _substreams(seed: int):
    return {name: np.random.default_rng([index, seed])
            for name, index in _FACTOR_STREAMS.items()}


def _phase_counts(n: int, phases: Tuple[float, ...]) -> List[int]:
    """Contiguous chunk sizes: n split as evenly as len(phases) allows."""
    base = n // len(phases)
    counts = [base] * len(phases)
    counts[-1] += n - base * len(phases)
    return counts


def _arrival_block(spec: ClusterWorkloadSpec, rng, n: int, rate: float,
                   t0: float) -> np.ndarray:
    """Vectorized arrivals for one phase, starting after ``t0``."""
    if spec.arrival == "poisson":
        return t0 + np.cumsum(rng.exponential(1.0 / rate, n))
    # bursty: burst start times from compensating gaps, tight
    # exponential spacing inside each burst (same shape as the
    # single-node loop, drawn in bulk).
    burst = spec.burst_size
    n_bursts = -(-n // burst)
    gap_mean = burst / rate
    intra_mean = spec.burst_spread * gap_mean
    starts = t0 + np.cumsum(rng.exponential(gap_mean, n_bursts))
    intra = np.cumsum(rng.exponential(intra_mean, (n_bursts, burst)), axis=1)
    return (starts[:, None] + intra).ravel()[:n]


def cluster_arrivals(spec: ClusterWorkloadSpec) -> np.ndarray:
    """All arrival times for the trace, phase by phase, sorted.

    Bursty arrivals can interleave — a short inter-burst gap starts the
    next burst inside the previous one's tail — so the concatenated
    trace is sorted before request ids are assigned; the coordinator's
    barrier protocol requires nondecreasing arrival times.
    """
    rng = _substreams(spec.seed)["arrival"]
    blocks: List[np.ndarray] = []
    t0 = 0.0
    for count, mult in zip(_phase_counts(spec.n_requests, spec.phases),
                           spec.phases):
        if count == 0:
            continue
        block = _arrival_block(spec, rng, count, spec.rate * mult, t0)
        blocks.append(block)
        t0 = float(block[-1])
    return np.sort(np.concatenate(blocks), kind="stable")


def iter_cluster_workload(spec: ClusterWorkloadSpec) -> Iterator[Request]:
    """Yield the trace's requests lazily, in (arrival, req_id) order."""
    rngs = _substreams(spec.seed)
    n = spec.n_requests
    arrivals = cluster_arrivals(spec)
    large, small, axpy_sizes = _size_pools(
        WorkloadSpec(scale=spec.scale, n_requests=n))

    # One bulk draw per factor (substream isolation preserved).
    is_axpy = rngs["routine"].random(n) < spec.axpy_fraction
    size_u = rngs["size"].random(n)          # small-vs-large coin
    size_ix = rngs["size"].integers(0, 1 << 30, n)  # pool index, modulo'd
    groups = rngs["group"].integers(0, spec.n_groups, n)
    priorities = rngs["priority"].integers(0, spec.n_priorities, n)
    has_deadline = rngs["deadline"].random(n) < spec.deadline_fraction
    slacks = rngs["deadline"].uniform(spec.slack_lo, spec.slack_hi, n)

    # Memoized problem pool: every request at one (routine, dims)
    # shares one immutable CoCoProblem and one reference_time.
    pool: Dict[Tuple, Tuple[CoCoProblem, float]] = {}

    def _pooled(key: Tuple) -> Tuple[CoCoProblem, float]:
        entry = pool.get(key)
        if entry is None:
            if key[0] == "axpy":
                problem = axpy_problem(key[1], np.float64)
            else:
                problem = gemm_problem(*key[1:], np.float64)
            entry = (problem, reference_time(problem))
            pool[key] = entry
        return entry

    for i in range(n):
        group: Optional[str] = None
        if is_axpy[i]:
            key = ("axpy", axpy_sizes[int(size_ix[i]) % len(axpy_sizes)])
        elif size_u[i] < spec.small_fraction:
            # A weight group is one model: its shared A operand has ONE
            # shape, bound to the group id — so every two requests of a
            # group are batchable (same M, K) and its weight-cache entry
            # is a single residency key.
            g = int(groups[i])
            key = ("gemm",) + small[g % len(small)]
            group = f"g{g}"
        else:
            key = ("gemm",) + large[int(size_ix[i]) % len(large)]
        problem, t_ref = _pooled(key)
        deadline: Optional[float] = None
        arrival = float(arrivals[i])
        if has_deadline[i]:
            deadline = arrival + float(slacks[i]) * t_ref
        yield Request(req_id=i, problem=problem, arrival=arrival,
                      priority=int(priorities[i]), deadline=deadline,
                      group=group)


def cluster_spec_as_dict(spec: ClusterWorkloadSpec) -> dict:
    """JSON-ready description of a spec (for the cluster report)."""
    return {
        "arrival": spec.arrival,
        "rate": spec.rate,
        "n_requests": spec.n_requests,
        "scale": spec.scale,
        "seed": spec.seed,
        "axpy_fraction": spec.axpy_fraction,
        "small_fraction": spec.small_fraction,
        "n_groups": spec.n_groups,
        "n_priorities": spec.n_priorities,
        "deadline_fraction": spec.deadline_fraction,
        "slack": [spec.slack_lo, spec.slack_hi],
        "burst_size": spec.burst_size,
        "phases": list(spec.phases),
    }
