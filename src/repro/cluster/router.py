"""Cluster-level request routing: sharding + predicted-backlog scoring.

Grouped requests (shared weights) shard by **consistent hashing**: a
ring of ``replicas`` points per node, keyed by sha1 — deliberately
*not* Python's builtin ``hash()``, which is salted per process and
would wreck cross-run determinism — maps each weight group to a
primary node, so a group's weight cache stays warm on one node across
fleet membership changes (only ~1/N of groups move when a node joins
or leaves).

Sharding alone herds a hot group onto one overloaded node, so the
router allows **bounded spill**: when the primary's predicted backlog
exceeds ``spill_backlog`` seconds, the request may go to whichever of
the primary's next ``spill_width`` distinct ring successors carries
the least predicted backlog.  The score is the *model's* signal —
:meth:`ClusterNode.predicted_backlog`, the closed-loop sum of
admission-time T_pred over every in-system request (each queue's
``total_predicted`` plus in-flight T_pred, counted until true
completion) — not instantaneous queue length: service times in one
trace span orders of magnitude, so one queued giant outweighs ten
queued batchable gemms, and only the prediction sees that.

Ungrouped requests (large gemms, axpy) have no cache affinity and go
straight to the fleet-wide minimum predicted backlog.

A ``least_connections`` policy — argmin over outstanding request
count, the classic reactive balancer — is kept as the baseline the
acceptance test beats.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from ..serve.request import Request, ServeError
from .node import ClusterNode

ROUTER_POLICIES = ("predicted", "least_connections")


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha1; never builtin hash())."""
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ClusterRouter:
    """Shard-then-score router over the active fleet."""

    def __init__(self, policy: str = "predicted", replicas: int = 64,
                 spill_width: int = 2, spill_backlog: float = 0.25) -> None:
        if policy not in ROUTER_POLICIES:
            raise ServeError(
                f"unknown router policy {policy!r}; valid: {ROUTER_POLICIES}")
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1: {replicas}")
        if spill_width < 0:
            raise ServeError(f"spill_width must be >= 0: {spill_width}")
        if spill_backlog < 0:
            raise ServeError(f"spill_backlog must be >= 0: {spill_backlog}")
        self.policy = policy
        self.replicas = replicas
        self.spill_width = spill_width
        self.spill_backlog = spill_backlog
        self.spills = 0
        self._ring: List[Tuple[int, str]] = []
        self._ring_nodes: Tuple[str, ...] = ()

    # -- ring maintenance ----------------------------------------------

    def _rebuild(self, nodes: Sequence[ClusterNode]) -> None:
        names = tuple(n.name for n in nodes)
        if names == self._ring_nodes:
            return
        ring = []
        for name in names:
            for i in range(self.replicas):
                ring.append((_ring_hash(f"{name}:{i}"), name))
        ring.sort()
        self._ring = ring
        self._ring_nodes = names

    def _ring_order(self, group: str) -> List[str]:
        """Distinct node names in ring order starting at the group's
        primary (deterministic successor walk)."""
        ring = self._ring
        start = bisect_right(ring, (_ring_hash(group), ""))
        seen: List[str] = []
        for k in range(len(ring)):
            name = ring[(start + k) % len(ring)][1]
            if name not in seen:
                seen.append(name)
        return seen

    # -- routing --------------------------------------------------------

    def route(self, request: Request, nodes: Sequence[ClusterNode],
              now: float) -> ClusterNode:
        """Pick the serving node among the active fleet.

        ``nodes`` must be the active members in stable (index) order;
        every tie breaks toward the earlier node, so one seed gives one
        assignment sequence.
        """
        if not nodes:
            raise ServeError("routing with an empty active fleet")
        if len(nodes) == 1:
            return nodes[0]
        if self.policy == "least_connections":
            return min(nodes, key=lambda n: (n.outstanding, n.index))
        if request.group is None:
            return min(nodes,
                       key=lambda n: (n.predicted_backlog(now), n.index))
        self._rebuild(nodes)
        by_name = {n.name: n for n in nodes}
        order = [by_name[name] for name in self._ring_order(request.group)]
        primary = order[0]
        if (self.spill_width == 0
                or primary.predicted_backlog(now) <= self.spill_backlog):
            return primary
        # Ties break toward ring order, so an idle fleet still lands a
        # group on its primary (warm weight cache) rather than node 0.
        candidates = order[:1 + self.spill_width]
        chosen = min(enumerate(candidates),
                     key=lambda kv: (kv[1].predicted_backlog(now), kv[0]))[1]
        if chosen is not primary:
            self.spills += 1
        return chosen
