"""Deterministic lock-step drive of a multi-node serving fleet.

Every node owns its own :class:`~repro.sim.engine.Simulator` clock.
The coordinator keeps those clocks honest with **epoch barriers**:
before any cross-node observation (routing a request, an autoscaler
tick, a kill event) it calls ``run_to(t)`` on every live node *in
node-index order*, so all clocks sit at exactly ``t`` and every
backlog the router compares was computed at the same virtual instant.
Barrier times come only from the trace (arrival times) and the config
(tick interval, kill times) — never from wall clock — so one seed
yields one byte-identical run.

Per epoch, in order:

1. autoscaler ticks and kill events strictly before the next arrival
   fire first (barrier to their time, act, continue);
2. barrier to the arrival time;
3. route the arrival over the active fleet and submit it to the chosen
   node's clock.

Migration (scale-down drain or node kill) happens *between* barriers:
the drained node's queued work comes back MIGRATED, each request is
re-routed as a fresh copy with the original arrival/deadline (and
``requeues`` bumped), and the fleet-wide conservation check later
folds the node-local views by ``req_id`` — a migrated request must be
served exactly once *somewhere*.

Memory discipline: nodes run ``retain=False`` and the coordinator
keeps floats/ints per terminal request, so a million-request trace
holds only its in-flight window of Request objects.  The only
per-request records kept to the end are the (rare) migration views and
inline-check anomalies the conservation verdict needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.predcache import PredictionCache
from ..core.tailbank import PercentileBank
from ..obs.verify import find_conservation_violations
from ..serve.request import Request, RequestState, ServeError
from ..serve.server import ServerConfig
from .autoscaler import Autoscaler, AutoscalerConfig
from .node import ClusterNode
from .router import ClusterRouter


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet-level knobs (node-level knobs live in ServerConfig)."""

    nodes: int = 4                   #: initial fleet size
    gpus_per_node: int = 2
    router: str = "predicted"        #: see ROUTER_POLICIES
    replicas: int = 64               #: consistent-hash points per node
    spill_width: int = 2             #: ring successors a shard may spill to
    spill_backlog: float = 0.25      #: predicted seconds before spilling
    tick: float = 0.05               #: autoscaler evaluation interval
    autoscale: bool = True
    autoscaler: AutoscalerConfig = AutoscalerConfig()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ServeError(f"nodes must be >= 1: {self.nodes}")
        if self.gpus_per_node < 1:
            raise ServeError(
                f"gpus_per_node must be >= 1: {self.gpus_per_node}")
        if self.tick <= 0:
            raise ServeError(f"tick must be positive: {self.tick}")
        if self.autoscale and not (
                self.autoscaler.min_nodes <= self.nodes
                <= self.autoscaler.max_nodes):
            raise ServeError(
                f"initial fleet size {self.nodes} outside autoscaler "
                f"bounds [{self.autoscaler.min_nodes}, "
                f"{self.autoscaler.max_nodes}]")


class _View:
    """Lightweight node-local view of one request (conservation input)."""

    __slots__ = ("req_id", "state", "completions")

    def __init__(self, req_id: int, state: RequestState,
                 completions: int) -> None:
        self.req_id = req_id
        self.state = state
        self.completions = completions


@dataclass
class ClusterOutcome:
    """Everything one cluster run produced (report.py aggregates it)."""

    config: ClusterConfig
    server_config: ServerConfig
    nodes: List[ClusterNode]
    scale_events: List[dict]
    router_policy: str
    spills: int
    migrations: int
    n_requests: int
    end_time: float
    conserved: int
    accounted: int
    violations: List[Tuple[str, str]]
    #: Fleet-shared tail-bank snapshot (percentile-admission runs only;
    #: None keeps mean-mode cluster documents byte-identical).
    tail_snapshot: Optional[dict] = None

    @property
    def conservation_ok(self) -> bool:
        return (not self.violations) and self.accounted == self.n_requests


class ClusterCoordinator:
    """Own the fleet, the router, the scaler, and the barrier order."""

    #: Runaway guard for the final drain loop (ticks, not events).
    _MAX_DRAIN_TICKS = 2_000_000

    def __init__(self, machine, models, config: Optional[ClusterConfig] = None,
                 server_config: Optional[ServerConfig] = None) -> None:
        self.machine = machine
        self.models = models
        self.config = config if config is not None else ClusterConfig()
        base = server_config if server_config is not None else ServerConfig()
        #: Node-level template; n_gpus is the cluster's per-node width.
        self.server_config = replace(
            base, n_gpus=self.config.gpus_per_node)
        #: One prediction cache across the fleet: nodes are homogeneous,
        #: so tile-selection work done on one node serves all.
        self.prediction_cache = PredictionCache()
        #: Fleet-shared residual bank (percentile-admission mode only):
        #: every node observes into and admits from the same quantiles.
        if self.server_config.admission_percentile is not None:
            self.tail_bank: Optional[PercentileBank] = (
                models.tail if getattr(models, "tail", None) is not None
                else PercentileBank())
        else:
            self.tail_bank = None
        self.router = ClusterRouter(
            policy=self.config.router, replicas=self.config.replicas,
            spill_width=self.config.spill_width,
            spill_backlog=self.config.spill_backlog)
        self.autoscaler = Autoscaler(self.config.autoscaler,
                                     self.config.gpus_per_node)
        self.nodes: List[ClusterNode] = []
        self._next_index = 0
        for _ in range(self.config.nodes):
            # The initial fleet is warm at t=0 (no cold-start on the
            # trace's first request).
            self._provision(0.0, warmup=0.0)
        self.migrations = 0
        self.n_requests = 0
        self.end_time = 0.0
        # -- conservation bookkeeping ---------------------------------
        self._conserved = 0
        self._migration_views: Dict[int, List[_View]] = {}
        self._anomalies: List[_View] = []
        self._ran = False

    # -- fleet membership ----------------------------------------------

    def _provision(self, now: float, warmup: Optional[float] = None) -> ClusterNode:
        if warmup is None:
            warmup = self.config.autoscaler.warmup
        node = ClusterNode(
            self._next_index, self.machine, self.models, self.server_config,
            provisioned_t=now, warmup=warmup,
            prediction_cache=self.prediction_cache,
            tail_bank=self.tail_bank)
        node.on_terminal_view = self._note_terminal
        self._next_index += 1
        self.nodes.append(node)
        return node

    def _active(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.state == "active"]

    def _live(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.state != "stopped"]

    # -- epoch barrier ---------------------------------------------------

    def _barrier(self, time: float) -> None:
        """Drive every live clock to ``time``, in node-index order."""
        for node in self.nodes:
            if node.state == "stopped":
                continue
            if node.server.sim.now < time:
                node.run_to(time)
            if node.state == "warming" and node.available_t <= time:
                node.state = "active"
            if node.state == "draining" and node.outstanding == 0:
                node.stop(time)

    # -- terminal & conservation accounting ------------------------------

    def _note_terminal(self, node: ClusterNode, request: Request) -> None:
        t = node.server.sim.now
        if t > self.end_time:
            self.end_time = t
        rid = request.req_id
        views = self._migration_views.get(rid)
        if views is not None:
            views.append(_View(rid, request.state, request.completions))
        else:
            # Inline fast path of the same invariant the extended
            # checker (obs.verify.find_conservation_violations) applies
            # to migrated/anomalous requests: one terminal view,
            # completions == 1 iff DONE.
            name = request.state.name
            ok = ((name == "DONE" and request.completions == 1)
                  or (name in ("SHED", "FAILED")
                      and request.completions == 0))
            if ok:
                self._conserved += 1
            else:
                self._anomalies.append(
                    _View(rid, request.state, request.completions))
        if (request.state is RequestState.DONE
                and request.predicted_seconds is not None):
            # Percentile-admission mode feeds the autoscaler's service
            # EWMA the tail-inflated estimate: capacity decisions then
            # provision for the p-th percentile demand, not the mean.
            est = (request.predicted_tail_seconds
                   if request.predicted_tail_seconds is not None
                   else request.predicted_seconds)
            self.autoscaler.observe_service(est)

    # -- migration --------------------------------------------------------

    def _migrate(self, moved: Sequence[Request], now: float) -> None:
        """Re-route drained/evacuated requests over the surviving fleet."""
        active = self._active()
        for old in moved:
            self._migration_views.setdefault(old.req_id, []).append(
                _View(old.req_id, old.state, old.completions))
            fresh = Request(req_id=old.req_id, problem=old.problem,
                            arrival=old.arrival, priority=old.priority,
                            deadline=old.deadline, group=old.group)
            fresh.requeues = old.requeues + 1
            # A downgraded request keeps its SLO identity across the
            # migration: the arrival deadline it is judged against must
            # not vanish with the node that downgraded it.
            fresh.downgraded = old.downgraded
            fresh.original_deadline = old.original_deadline
            self.migrations += 1
            target = self.router.route(fresh, active, now)
            target.submit(fresh)

    # -- scaling actions --------------------------------------------------

    def _scale_up(self, now: float) -> ClusterNode:
        node = self._provision(now)
        event = self.autoscaler.events[-1]
        event["node"] = node.name
        return node

    def _scale_down(self, now: float) -> Optional[ClusterNode]:
        active = self._active()
        if len(active) <= self.config.autoscaler.min_nodes:
            return None
        # Youngest-first: the highest-index active node drains, so the
        # long-lived shard owners keep their warm weight caches.
        node = max(active, key=lambda n: n.index)
        moved = node.drain()
        event = self.autoscaler.events[-1]
        event["node"] = node.name
        event["migrated"] = len(moved)
        self._migrate(moved, now)
        if node.outstanding == 0:
            node.stop(now)
        return node

    def _kill(self, node_name: str, now: float) -> None:
        node = next((n for n in self.nodes
                     if n.name == node_name and n.state != "stopped"), None)
        if node is None:
            return
        was = node.state
        moved = node.evacuate()
        self.autoscaler.events.append({
            "t": now, "action": "kill", "node": node.name,
            "reason": {"prior_state": was, "migrated": len(moved)},
        })
        self._migrate(moved, now)

    def _tick(self, now: float) -> None:
        if not self.config.autoscale:
            return
        active = self._active()
        if not active:
            return
        fleet_backlog = sum(n.predicted_backlog(now) for n in active)
        action = self.autoscaler.decide(now, len(active), fleet_backlog)
        if action == "up":
            self._scale_up(now)
        elif action == "down":
            if self._scale_down(now) is None:
                # Guarded out (min_nodes raced a drain): drop the event.
                self.autoscaler.events.pop()

    # -- the run ----------------------------------------------------------

    def run(self, requests: Iterable[Request],
            kill_events: Optional[Sequence[Tuple[float, str]]] = None
            ) -> ClusterOutcome:
        """Drive the whole trace to quiescence and return the outcome.

        ``requests`` must arrive in (arrival, req_id) order (both
        generators guarantee it).  ``kill_events`` is an optional list
        of ``(time, node_name)`` hard failures.
        """
        if self._ran:
            raise ServeError("a ClusterCoordinator runs exactly once")
        self._ran = True
        kills = sorted(kill_events or [])
        kill_ix = 0
        tick = self.config.tick
        next_tick = tick

        def boundaries_until(t: float):
            """Fire ticks/kills at times <= t, earliest first."""
            nonlocal next_tick, kill_ix
            while True:
                t_kill = kills[kill_ix][0] if kill_ix < len(kills) else None
                if t_kill is not None and t_kill <= min(next_tick, t):
                    self._barrier(t_kill)
                    self._kill(kills[kill_ix][1], t_kill)
                    kill_ix += 1
                    continue
                if next_tick <= t:
                    self._barrier(next_tick)
                    self._tick(next_tick)
                    next_tick += tick
                    continue
                break

        for request in requests:
            t = request.arrival
            self.n_requests += 1
            boundaries_until(t)
            self._barrier(t)
            active = self._active()
            if not active:
                raise ServeError(
                    f"no active node at t={t:.6f} (all killed or draining)")
            self.autoscaler.observe_arrival(t)
            node = self.router.route(request, active, t)
            node.submit(request)

        # Drain to quiescence: keep ticking (scale-down included) until
        # every submitted request reached a terminal state.
        ticks = 0
        while any(n.outstanding for n in self.nodes):
            boundaries_until(next_tick)
            ticks += 1
            if ticks > self._MAX_DRAIN_TICKS:
                raise ServeError(
                    "cluster drain did not quiesce (simulation wedged)")

        violations = find_conservation_violations(self._all_views())
        accounted = (self._conserved + len(self._migration_views)
                     + len(self._anomalies))
        return ClusterOutcome(
            config=self.config,
            server_config=self.server_config,
            nodes=self.nodes,
            scale_events=list(self.autoscaler.events),
            router_policy=self.router.policy,
            spills=self.router.spills,
            migrations=self.migrations,
            n_requests=self.n_requests,
            end_time=self.end_time,
            conserved=self._conserved,
            accounted=accounted,
            violations=violations,
            tail_snapshot=self._tail_snapshot(),
        )

    def _tail_snapshot(self) -> Optional[dict]:
        """The shared bank's state plus fleet-summed admission counters
        (None outside percentile-admission mode)."""
        if self.tail_bank is None:
            return None
        snap = self.tail_bank.snapshot()
        snap["percentile"] = self.server_config.admission_percentile
        snap["tail_rejections"] = sum(
            n.server.dispatcher.tail_rejections for n in self.nodes)
        return snap

    def _all_views(self) -> List[_View]:
        views: List[_View] = []
        for vlist in self._migration_views.values():
            views.extend(vlist)
        views.extend(self._anomalies)
        return views
