"""Model-guided autoscaling: predicted demand, not reactive queues.

The scaler never looks at queue lengths.  Its two signals are

* an EWMA of the **arrival rate** (updated from router-observed
  interarrival gaps), and
* an EWMA of the **predicted service time** of admitted work (the
  CoCoPeLia models' admission-time prediction, fed back on every
  completion),

whose product is the offered load in busy-seconds per second — the
number of workers the fleet must keep busy just to hold steady.  The
desired fleet size is that demand divided by per-node capacity at the
target utilization.  Predicted backlog per node (the same signal the
router scores with) acts as the pressure-relief override: when the
models say the fleet is already ``up_backlog`` seconds behind per
node, scale up even if the rate EWMA hasn't caught up yet.

Scale-up provisions a cold node (warm-up delay, empty weight caches);
scale-down gracefully drains the highest-index active node —
arrival-preserving requeue, in-flight work finishes where it started.
A cooldown between actions stops the controller from flapping inside
one burst.  Every decision appends a timestamped event with the full
reasoning snapshot, so reports can show *why* the fleet moved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..serve.request import ServeError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs (all simulated-time; deterministic given inputs)."""

    min_nodes: int = 2
    max_nodes: int = 8
    #: Fraction of per-node GPU-seconds the controller plans to use.
    target_utilization: float = 0.7
    #: Per-node predicted backlog (seconds) forcing a scale-up.
    up_backlog: float = 0.5
    #: Per-node predicted backlog below which scale-down is allowed.
    down_backlog: float = 0.05
    #: EWMA smoothing for arrival rate and predicted service time.
    rate_alpha: float = 0.05
    service_alpha: float = 0.05
    #: Simulated seconds between scaling actions.
    cooldown: float = 1.0
    #: Simulated warm-up before a provisioned node takes traffic.
    warmup: float = 0.25

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ServeError(f"min_nodes must be >= 1: {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ServeError(
                f"max_nodes ({self.max_nodes}) below min_nodes "
                f"({self.min_nodes})")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ServeError(
                f"target_utilization outside (0, 1]: "
                f"{self.target_utilization}")
        for name in ("rate_alpha", "service_alpha"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ServeError(f"{name} outside (0, 1]: {v}")
        if self.down_backlog >= self.up_backlog:
            raise ServeError(
                f"down_backlog ({self.down_backlog}) must sit below "
                f"up_backlog ({self.up_backlog})")
        if self.cooldown < 0 or self.warmup < 0:
            raise ServeError("cooldown and warmup must be >= 0")


class Autoscaler:
    """EWMA demand model + hysteresis → "up" / "down" / None per tick."""

    def __init__(self, config: AutoscalerConfig, gpus_per_node: int) -> None:
        self.config = config
        self.gpus_per_node = gpus_per_node
        self.ewma_rate = 0.0
        self.ewma_service: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._last_action_t = -math.inf
        self.events: List[dict] = []

    # -- signal feeds (called by the coordinator) -----------------------

    def observe_arrival(self, t: float) -> None:
        """Fold one routed arrival into the rate EWMA."""
        last = self._last_arrival
        self._last_arrival = t
        if last is None or t <= last:
            return
        sample = 1.0 / (t - last)
        a = self.config.rate_alpha
        self.ewma_rate += a * (sample - self.ewma_rate)

    def observe_service(self, predicted_seconds: float) -> None:
        """Fold one admission-time service prediction into the EWMA."""
        if predicted_seconds <= 0:
            return
        if self.ewma_service is None:
            self.ewma_service = predicted_seconds
            return
        a = self.config.service_alpha
        self.ewma_service += a * (predicted_seconds - self.ewma_service)

    # -- the decision ----------------------------------------------------

    def desired_nodes(self) -> int:
        """Fleet size implied by the demand model (no hysteresis)."""
        if self.ewma_service is None or self.ewma_rate <= 0:
            return self.config.min_nodes
        demand = self.ewma_rate * self.ewma_service   # busy-sec per sec
        capacity = self.gpus_per_node * self.config.target_utilization
        return max(self.config.min_nodes,
                   min(self.config.max_nodes,
                       int(math.ceil(demand / capacity))))

    def decide(self, now: float, active: int,
               fleet_backlog: float) -> Optional[str]:
        """One tick: "up", "down", or None.  Appends a reasoned event."""
        cfg = self.config
        if now - self._last_action_t < cfg.cooldown:
            return None
        backlog_per_node = fleet_backlog / active if active else 0.0
        desired = self.desired_nodes()
        action: Optional[str] = None
        if active < cfg.max_nodes and (desired > active
                                       or backlog_per_node > cfg.up_backlog):
            action = "up"
        elif (active > cfg.min_nodes and desired < active
              and backlog_per_node < cfg.down_backlog):
            action = "down"
        if action is not None:
            self._last_action_t = now
            self.events.append({
                "t": now,
                "action": action,
                "reason": {
                    "ewma_rate": self.ewma_rate,
                    "ewma_service": self.ewma_service,
                    "fleet_backlog": fleet_backlog,
                    "backlog_per_node": backlog_per_node,
                    "desired": desired,
                    "active": active,
                },
            })
        return action
