"""One fleet member: a :class:`BlasServer` wrapped for cluster duty.

A node owns its *own* simulator clock, dispatcher and health monitor —
exactly today's single-node server, opened in incremental mode
(``begin(retain=False)``) so the coordinator can feed it arrivals one
epoch at a time and drive its clock with ``Simulator.run_to``.  The
node keeps lightweight accounting (latency floats, counters) instead
of request objects, so a million-request trace never piles up in
memory; terminal requests surface through the server's ``on_terminal``
hook and are dropped immediately after.

Node lifecycle::

    warming -> active -> draining -> stopped

A provisioned node spends ``warmup`` simulated seconds WARMING (cold
weight caches, not yet routable), serves while ACTIVE, stops taking
new work while DRAINING (in-flight finishes here, queued work migrates
away), and is deregistered once STOPPED.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..serve.request import Request, RequestState
from ..serve.server import BlasServer, ServerConfig

NODE_STATES = ("warming", "active", "draining", "stopped")

#: Per-node seed offset prime: node i's server draws from
#: ``seed + _NODE_SEED_PRIME * i`` so no two nodes share noise streams.
_NODE_SEED_PRIME = 1_000_003


class ClusterNode:
    """A named fleet member owning one incremental :class:`BlasServer`."""

    def __init__(self, index: int, machine, models, config: ServerConfig,
                 provisioned_t: float, warmup: float,
                 prediction_cache=None, tail_bank=None) -> None:
        self.index = index
        self.name = f"node{index}"
        self.config = replace(
            config, seed=config.seed + _NODE_SEED_PRIME * index)
        # The tail bank (percentile-admission mode) is fleet-shared:
        # nodes are homogeneous, so residual ratios observed on one
        # node refine admission on all.  The epoch barrier drives nodes
        # in index order, so the shared observation sequence — and with
        # it the bank's count-scheduled refits — is deterministic.
        self.server = BlasServer(machine, models, self.config,
                                 prediction_cache=prediction_cache,
                                 tail_bank=tail_bank)
        self.server.begin(retain=False, on_terminal=self._on_terminal)
        self.state = "warming" if warmup > 0 else "active"
        self.provisioned_t = provisioned_t
        #: Simulated instant the node starts taking traffic.
        self.available_t = provisioned_t + warmup
        self.stopped_t: Optional[float] = None
        # -- node-local accounting (floats and ints only) -------------
        self.latencies: List[float] = []
        self.waits: List[float] = []
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.migrated_out = 0
        self.routed = 0
        self.slo_met = 0
        self.slo_missed = 0
        #: Terminal views the coordinator folds into the fleet-wide
        #: conservation check; set by the coordinator before traffic.
        self.on_terminal_view = None
        # -- closed-loop predicted-work ledger -------------------------
        # Each routed request's admission-time T_pred stays in the sum
        # until the request truly leaves the node (terminal or
        # migrated).  See predicted_backlog() for why this is *not* the
        # server's time-clipped backlog.
        self._pred_in_system = 0.0
        self._pred_by_id: Dict[int, float] = {}

    # -- router-facing signals ----------------------------------------

    @property
    def outstanding(self) -> int:
        """Routed-but-not-terminal requests on this node."""
        return self.server.outstanding

    def predicted_backlog(self, now: float) -> float:
        """Predicted seconds of work in this node's system (closed loop).

        The sum of the model's admission-time service predictions over
        every request routed here and not yet terminal — the queues'
        ``total_predicted`` plus in-flight ``T_pred``.  Deliberately
        *not* the dispatcher's ``max(running_pred_end - now, 0)`` form:
        that clips a batch running past its prediction to zero, so a
        node running *behind* reads as idle and the router herds new
        work onto it (open-loop positive feedback).  Counting each
        prediction until true completion keeps the signal closed-loop
        — self-correcting like least-connections, but weighted by
        predicted work instead of a bare request count.
        """
        return max(self._pred_in_system, 0.0)

    def _charge(self, request: Request) -> None:
        placement = self.server.dispatcher.place(request,
                                                 self.server.sim.now)
        if placement is None:
            est = 0.0
        elif placement.tail_seconds is not None:
            # Percentile-admission mode: the backlog ledger carries the
            # tail-inflated estimate, so the router's spill decisions
            # see the pessimistic (p-th percentile) queue, not the mean.
            est = placement.tail_seconds
        else:
            est = placement.predicted_seconds
        self._pred_in_system += est
        self._pred_by_id[request.req_id] = est

    def _settle(self, request: Request) -> None:
        self._pred_in_system -= self._pred_by_id.pop(request.req_id, 0.0)

    # -- coordinator drive ---------------------------------------------

    def run_to(self, time: float) -> int:
        """Advance this node's clock to the epoch barrier."""
        return self.server.sim.run_to(time)

    def submit(self, request: Request) -> None:
        self.routed += 1
        self._charge(request)
        self.server.submit(request)

    def drain(self) -> List[Request]:
        """Begin graceful scale-down: stop routing, hand queued work
        back (MIGRATED, arrival/deadline preserved)."""
        self.state = "draining"
        moved = self.server.drain_queued()
        for request in moved:
            self._settle(request)
        self.migrated_out += len(moved)
        return moved

    def evacuate(self) -> List[Request]:
        """Hard kill: queued AND in-flight work comes back MIGRATED."""
        moved = self.server.evacuate()
        for request in moved:
            self._settle(request)
        self.migrated_out += len(moved)
        self.stop(self.server.sim.now)
        return moved

    def stop(self, now: float) -> None:
        self.state = "stopped"
        self.stopped_t = now

    # -- terminal accounting -------------------------------------------

    def _on_terminal(self, request: Request) -> None:
        self._settle(request)
        if request.state is RequestState.DONE:
            self.completed += 1
            if request.latency is not None:
                self.latencies.append(request.latency)
            if request.wait is not None:
                self.waits.append(request.wait)
            if request.slo_met is True:
                self.slo_met += 1
            elif request.slo_met is False:
                self.slo_missed += 1
        elif request.state is RequestState.SHED:
            self.shed += 1
        else:
            self.failed += 1
        if self.on_terminal_view is not None:
            self.on_terminal_view(self, request)

    def as_dict(self) -> dict:
        """JSON-ready per-node block for the cluster report."""
        from ..obs.stats import latency_summary

        busy = sum(s.busy_seconds for s in self.server._stats)
        return {
            "node": self.name,
            "state": self.state,
            "provisioned_t": self.provisioned_t,
            "available_t": self.available_t,
            "stopped_t": self.stopped_t,
            "routed": self.routed,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "migrated_out": self.migrated_out,
            "slo": {"met": self.slo_met, "missed": self.slo_missed},
            "latency": (latency_summary(self.latencies)
                        if self.latencies else None),
            "busy_seconds": busy,
            "batches": self.server._next_batch,
        }
