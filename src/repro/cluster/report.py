"""The versioned ``repro.cluster/v1`` fleet report.

Shape (validated by :func:`validate_cluster_json`):

.. code-block:: text

    {
      "schema": "repro.cluster/v1",
      "context": {...},                     # caller-supplied (CLI args)
      "report": {
        "fleet": {
          "requests": {total, completed, shed, failed, migrations,
                       slo: {met, missed, attainment}},
          "latency": {n, mean, min, max, p50, p95, p99} | null,
          "throughput_rps": float, "makespan": float,
          "nodes_provisioned": int, "nodes_final": int,
          "prediction": {tail: {...}}?,   # percentile-admission runs
        },
        "nodes": [{node, state, provisioned_t, available_t, stopped_t,
                   routed, completed, shed, failed, migrated_out,
                   slo: {met, missed}, latency | null, busy_seconds,
                   batches}, ...],
        "scaling": {events: [{t, action, node?, reason}, ...],
                    scale_ups, scale_downs, kills},
        "routing": {policy, spills},
        "conservation": {ok, accounted, conserved, violations: [...]},
      },
    }

Like the serve document: emitted with ``sort_keys=True`` and repr
floats, so one seed produces one byte sequence — the property the
cluster determinism smoke pins with ``cmp``.  The latency/percentile
math is :mod:`repro.obs.stats`, the same code path as ``repro.serve/v1``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..errors import ReproError
from ..obs.stats import latency_summary
from ..serve.report import validate_tail_block
from .coordinator import ClusterOutcome
from .router import ROUTER_POLICIES

CLUSTER_SCHEMA_VERSION = "repro.cluster/v1"


def cluster_report(outcome: ClusterOutcome) -> Dict[str, object]:
    """Aggregate one cluster run into the report body."""
    nodes = outcome.nodes
    completed = sum(n.completed for n in nodes)
    shed = sum(n.shed for n in nodes)
    failed = sum(n.failed for n in nodes)
    met = sum(n.slo_met for n in nodes)
    missed = sum(n.slo_missed for n in nodes)
    latencies: List[float] = []
    for n in nodes:
        latencies.extend(n.latencies)
    makespan = outcome.end_time
    events = outcome.scale_events
    fleet: Dict[str, object] = {
        "requests": {
            "total": outcome.n_requests,
            "completed": completed,
            "shed": shed,
            "failed": failed,
            "migrations": outcome.migrations,
            "slo": {
                "met": met,
                "missed": missed,
                "attainment": (met / (met + missed)
                               if met + missed else 1.0),
            },
        },
        "latency": latency_summary(latencies) if latencies else None,
        "throughput_rps": (completed / makespan if makespan > 0
                           else 0.0),
        "makespan": makespan,
        "nodes_provisioned": len(nodes),
        "nodes_final": sum(1 for n in nodes if n.state != "stopped"),
    }
    if outcome.tail_snapshot is not None:
        # Keyed in only on percentile-admission runs, so mean-mode
        # cluster documents keep their exact pre-tail bytes.
        fleet["prediction"] = {"tail": outcome.tail_snapshot}
    return {
        "fleet": fleet,
        "nodes": [n.as_dict() for n in nodes],
        "scaling": {
            "events": events,
            "scale_ups": sum(1 for e in events if e["action"] == "up"),
            "scale_downs": sum(1 for e in events if e["action"] == "down"),
            "kills": sum(1 for e in events if e["action"] == "kill"),
        },
        "routing": {
            "policy": outcome.router_policy,
            "spills": outcome.spills,
        },
        "conservation": {
            "ok": outcome.conservation_ok,
            "accounted": outcome.accounted,
            "conserved": outcome.conserved,
            "violations": [message for _inv, message in outcome.violations],
        },
    }


def cluster_document(
    outcome: ClusterOutcome,
    context: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON document ``repro cluster`` emits (schema v1)."""
    doc: Dict[str, object] = {
        "schema": CLUSTER_SCHEMA_VERSION,
        "context": dict(context or {}),
        "report": cluster_report(outcome),
    }
    validate_cluster_json(doc)
    return doc


def dump_cluster_document(doc: Dict[str, object]) -> str:
    """Canonical byte-stable rendering of a cluster document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# schema validation (mirrors serve/report.py: JSON-path error messages)
# ---------------------------------------------------------------------------

def _fail(path: str, message: str) -> None:
    raise ReproError(f"invalid cluster document at {path}: {message}")


def _expect(doc: dict, path: str, key: str, types, allow_none=False):
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if value is None:
        if allow_none:
            return None
        _fail(f"{path}.{key}", "must not be null")
    if isinstance(value, bool) and types is not bool:
        _fail(f"{path}.{key}", f"expected {types}, got bool")
    if not isinstance(value, types):
        names = getattr(types, "__name__", None) or "/".join(
            t.__name__ for t in types)
        _fail(f"{path}.{key}", f"expected {names}, got {type(value).__name__}")
    return value


def _expect_number(doc: dict, path: str, key: str, allow_none=False):
    return _expect(doc, path, key, (int, float), allow_none=allow_none)


def _expect_count(doc: dict, path: str, key: str) -> int:
    value = _expect(doc, path, key, int)
    if value < 0:
        _fail(f"{path}.{key}", f"must be >= 0, got {value}")
    return value


def _expect_summary(parent: dict, path: str, key: str) -> None:
    summary = _expect(parent, path, key, dict, allow_none=True)
    if summary is None:
        return
    spath = f"{path}.{key}"
    _expect(summary, spath, "n", int)
    for fld in ("mean", "min", "max", "p50", "p95", "p99"):
        _expect_number(summary, spath, fld)


def validate_cluster_json(doc: object) -> None:
    """Check a cluster document against schema v1; raise on mismatch."""
    if not isinstance(doc, dict):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _expect(doc, "$", "schema", str)
    if schema != CLUSTER_SCHEMA_VERSION:
        _fail("$.schema",
              f"expected {CLUSTER_SCHEMA_VERSION!r}, got {schema!r}")
    _expect(doc, "$", "context", dict)

    report = _expect(doc, "$", "report", dict)

    fleet = _expect(report, "$.report", "fleet", dict)
    requests = _expect(fleet, "$.report.fleet", "requests", dict)
    for key in ("total", "completed", "shed", "failed", "migrations"):
        _expect_count(requests, "$.report.fleet.requests", key)
    slo = _expect(requests, "$.report.fleet.requests", "slo", dict)
    for key in ("met", "missed"):
        _expect_count(slo, "$.report.fleet.requests.slo", key)
    attainment = _expect_number(slo, "$.report.fleet.requests.slo",
                                "attainment")
    if not 0.0 <= attainment <= 1.0:
        _fail("$.report.fleet.requests.slo.attainment",
              f"must be in [0, 1], got {attainment}")
    total = requests["total"]
    if requests["completed"] + requests["shed"] + requests["failed"] > total:
        _fail("$.report.fleet.requests",
              "completed + shed + failed exceeds total")
    _expect_summary(fleet, "$.report.fleet", "latency")
    for key in ("throughput_rps", "makespan"):
        value = _expect_number(fleet, "$.report.fleet", key)
        if value < 0:
            _fail(f"$.report.fleet.{key}", f"must be >= 0, got {value}")
    provisioned = _expect_count(fleet, "$.report.fleet", "nodes_provisioned")
    final = _expect_count(fleet, "$.report.fleet", "nodes_final")
    if final > provisioned:
        _fail("$.report.fleet.nodes_final",
              f"exceeds nodes_provisioned ({final} > {provisioned})")
    if "prediction" in fleet:
        prediction = _expect(fleet, "$.report.fleet", "prediction", dict)
        tail = _expect(prediction, "$.report.fleet.prediction", "tail", dict)
        validate_tail_block(tail, "$.report.fleet.prediction.tail",
                            fail=_fail)

    nodes = _expect(report, "$.report", "nodes", list)
    if len(nodes) != provisioned:
        _fail("$.report.nodes",
              f"length {len(nodes)} != nodes_provisioned {provisioned}")
    for i, node in enumerate(nodes):
        path = f"$.report.nodes[{i}]"
        if not isinstance(node, dict):
            _fail(path, "expected an object")
        _expect(node, path, "node", str)
        state = _expect(node, path, "state", str)
        if state not in ("warming", "active", "draining", "stopped"):
            _fail(f"{path}.state", f"unknown node state {state!r}")
        for key in ("provisioned_t", "available_t"):
            _expect_number(node, path, key)
        _expect_number(node, path, "stopped_t", allow_none=True)
        for key in ("routed", "completed", "shed", "failed",
                    "migrated_out", "batches"):
            _expect_count(node, path, key)
        nslo = _expect(node, path, "slo", dict)
        for key in ("met", "missed"):
            _expect_count(nslo, f"{path}.slo", key)
        _expect_summary(node, path, "latency")
        _expect_number(node, path, "busy_seconds")

    scaling = _expect(report, "$.report", "scaling", dict)
    events = _expect(scaling, "$.report.scaling", "events", list)
    for i, event in enumerate(events):
        path = f"$.report.scaling.events[{i}]"
        if not isinstance(event, dict):
            _fail(path, "expected an object")
        t = _expect_number(event, path, "t")
        if t < 0:
            _fail(f"{path}.t", f"must be >= 0, got {t}")
        action = _expect(event, path, "action", str)
        if action not in ("up", "down", "kill"):
            _fail(f"{path}.action", f"unknown action {action!r}")
        _expect(event, path, "reason", dict)
    for key in ("scale_ups", "scale_downs", "kills"):
        _expect_count(scaling, "$.report.scaling", key)

    routing = _expect(report, "$.report", "routing", dict)
    policy = _expect(routing, "$.report.routing", "policy", str)
    if policy not in ROUTER_POLICIES:
        _fail("$.report.routing.policy", f"unknown policy {policy!r}")
    _expect_count(routing, "$.report.routing", "spills")

    conservation = _expect(report, "$.report", "conservation", dict)
    _expect(conservation, "$.report.conservation", "ok", bool)
    for key in ("accounted", "conserved"):
        _expect_count(conservation, "$.report.conservation", key)
    violations = _expect(conservation, "$.report.conservation",
                         "violations", list)
    for i, message in enumerate(violations):
        if not isinstance(message, str):
            _fail(f"$.report.conservation.violations[{i}]",
                  "expected a string")
    if conservation["ok"] and violations:
        _fail("$.report.conservation",
              "ok is true but violations are present")
