"""cuBLASXt-like baseline: streamed tiled gemm with no data reuse.

Mirrors the behaviour the paper (and the BLASX paper it cites [8])
attributes to cuBLASXt: every subkernel ``(i, j, l)`` is dispatched
round-robin to a fixed set of stream pipelines, and each subkernel
transfers *all* its host-resident tiles — A and B are re-fetched every
time, and the C tile round-trips (h2d before the kernel, d2h after)
on every inner-dimension step, serialized per output tile so the
accumulation stays correct.  Double-buffered slots per worker let
transfers overlap kernels.  The tiling size is a user parameter
(cuBLASXt's extra BLAS argument).

This is exactly the no-reuse transfer structure the BTS model (Eq. 4)
assumes, which is why the paper validates that model against cuBLASXt.
Device-resident operands are used in place (cuBLASXt accepts device
pointers), so the get/set flags still shape the traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend.cublas import CublasContext, DeviceMatrix, MatrixView
from ..core.params import CoCoProblem, Loc, gemm_problem, prefix_for
from ..errors import BlasError, SchedulerError
from ..runtime.result import RunResult
from ..runtime.routines import _host_operand
from ..runtime.scheduler import _PipelineBase
from ..runtime.tiles import Grid2D
from ..sim.device import GpuDevice
from ..sim.machine import MachineConfig
from ..sim.memory import HostArray
from ..sim.stream import CudaEvent

#: cuBLASXt's default tiling size (the paper tunes around it).
DEFAULT_TILE = 4096


class _Slot:
    """One persistent device buffer with event-guarded reuse."""

    def __init__(self, ctx: CublasContext, rows: int, cols: int, dtype,
                 with_data: bool, name: str) -> None:
        self.matrix = ctx.alloc_matrix(rows, cols, dtype, with_data=with_data,
                                       name=name)
        #: Completion of the last operation that used this slot; the
        #: next overwrite must wait for it.
        self.guard: Optional[CudaEvent] = None

    def view(self, rows: int, cols: int) -> MatrixView:
        return MatrixView(self.matrix, rows, cols)

    def free(self) -> None:
        self.matrix.free()


class _Worker:
    """One round-robin pipeline: its own streams and buffer slots.

    Slots are sized to the clamped tile shapes (a tile never exceeds
    the operand it comes from), double-buffered per operand.
    """

    def __init__(self, ctx: CublasContext, wid: int, dims, t: int, dtype,
                 with_data: bool) -> None:
        device = ctx.device
        m, n, k = dims
        self.s_h2d = device.create_stream(f"xt{wid}-h2d")
        self.s_exec = device.create_stream(f"xt{wid}-exec")
        self.s_d2h = device.create_stream(f"xt{wid}-d2h")

        def mk(name, rows, cols):
            return _Slot(ctx, rows, cols, dtype, with_data, f"w{wid}-{name}")

        self.a_slots = [mk(f"a{i}", min(t, m), min(t, k)) for i in range(2)]
        self.b_slots = [mk(f"b{i}", min(t, k), min(t, n)) for i in range(2)]
        self.c_slots = [mk(f"c{i}", min(t, m), min(t, n)) for i in range(2)]
        self.tasks = 0

    @staticmethod
    def pool_bytes(dims, t: int, elem_size: int) -> int:
        """Device bytes one worker's six slots occupy."""
        m, n, k = dims
        per_set = (min(t, m) * min(t, k) + min(t, k) * min(t, n)
                   + min(t, m) * min(t, n))
        return 2 * per_set * elem_size

    def all_slots(self) -> List[_Slot]:
        return self.a_slots + self.b_slots + self.c_slots


class CublasXtScheduler(_PipelineBase):
    """The subkernel pipeline behind :class:`CublasXtLibrary`."""

    def __init__(
        self,
        ctx: CublasContext,
        problem: CoCoProblem,
        t: int,
        hosts: Dict[str, HostArray],
        alpha: float = 1.0,
        beta: float = 1.0,
        nstreams: int = 4,
    ) -> None:
        super().__init__(ctx, problem, hosts)
        if problem.routine.name != "gemm":
            raise SchedulerError("CublasXtScheduler only handles gemm")
        if nstreams < 1:
            raise SchedulerError(f"need at least one worker, got {nstreams}")
        m, n, k = problem.dims
        self.t = min(t, max(m, n, k))
        self.alpha = alpha
        self.beta = beta
        self.grid_a = Grid2D(m, k, self.t)
        self.grid_b = Grid2D(k, n, self.t)
        self.grid_c = Grid2D(m, n, self.t)
        self._operand = {op.name: op for op in problem.operands}
        with_data = any(h.has_data for h in hosts.values())
        n_tasks = self.grid_c.n_tiles * self.grid_a.col_tiles
        # Workers are capped by the device memory the slot pools need
        # (real cuBLASXt sizes its stream pool the same way); at least
        # one worker is always attempted — a genuinely oversized tile
        # then OOMs, as it would on hardware.
        pool = _Worker.pool_bytes(problem.dims, self.t, problem.elem_size)
        mem_cap = max(int(ctx.device.mem_free * 0.9) // max(pool, 1), 1)
        n_workers = max(min(nstreams, n_tasks, mem_cap), 1)
        self.workers = [
            _Worker(ctx, w, problem.dims, self.t, problem.dtype, with_data)
            for w in range(n_workers)
        ]
        #: Device-resident operand tiles, used in place (keyed by
        #: (operand, i, j)); allocated lazily, shared across subkernels.
        self._resident: Dict[Tuple[str, int, int], MatrixView] = {}
        self._resident_mats: List[DeviceMatrix] = []
        #: Per-C-tile ordering: the event the next round-trip (or
        #: in-place kernel) must wait on.
        self._c_order: Dict[Tuple[int, int], CudaEvent] = {}

    # ------------------------------------------------------------------

    def _resident_tile(self, name: str, grid: Grid2D, i: int, j: int
                       ) -> MatrixView:
        key = (name, i, j)
        view = self._resident.get(key)
        if view is None:
            host = self.hosts[name]
            r0, c0, rows, cols = grid.tile_window(i, j)
            mat = self.ctx.alloc_matrix(
                rows, cols, self.problem.dtype,
                with_data=host.has_data, name=f"{name}dev({i},{j})",
            )
            if host.has_data:
                mat.array[:, :] = host.array[r0:r0 + rows, c0:c0 + cols]
            self._resident_mats.append(mat)
            view = MatrixView(mat, rows, cols)
            self._resident[key] = view
        return view

    def _stage_tile(self, worker: _Worker, slot: _Slot, name: str,
                    grid: Grid2D, i: int, j: int,
                    extra_wait: Optional[CudaEvent] = None) -> MatrixView:
        """h2d a host-resident tile into a worker slot."""
        host = self.hosts[name]
        r0, c0, rows, cols = grid.tile_window(i, j)
        if slot.guard is not None:
            worker.s_h2d.wait_event(slot.guard)
        if extra_wait is not None:
            worker.s_h2d.wait_event(extra_wait)
        view = slot.view(rows, cols)
        self.ctx.set_matrix_async(
            host, r0, c0, view, worker.s_h2d,
            tag=f"h2d:{name}({i},{j})" if self._tagged else "")
        return view

    def _issue(self) -> None:
        kt = self.grid_a.col_tiles
        a_dev = self._operand["A"].loc is Loc.DEVICE
        b_dev = self._operand["B"].loc is Loc.DEVICE
        c_dev = self._operand["C"].loc is Loc.DEVICE
        c_host = self.hosts["C"]
        tasks = [
            (i, j, l) for (i, j) in self.grid_c for l in range(kt)
        ]
        for idx, (i, j, l) in enumerate(tasks):
            worker = self.workers[idx % len(self.workers)]
            phase = worker.tasks % 2
            worker.tasks += 1
            # --- inputs ---
            if a_dev:
                a_view = self._resident_tile("A", self.grid_a, i, l)
            else:
                a_view = self._stage_tile(worker, worker.a_slots[phase],
                                          "A", self.grid_a, i, l)
            if b_dev:
                b_view = self._resident_tile("B", self.grid_b, l, j)
            else:
                b_view = self._stage_tile(worker, worker.b_slots[phase],
                                          "B", self.grid_b, l, j)
            # --- C (round-trips when host-resident) ---
            prev_c = self._c_order.get((i, j))
            if c_dev:
                c_view = self._resident_tile("C", self.grid_c, i, j)
                if prev_c is not None:
                    worker.s_exec.wait_event(prev_c)
            else:
                c_slot = worker.c_slots[phase]
                c_view = self._stage_tile(worker, c_slot, "C", self.grid_c,
                                          i, j, extra_wait=prev_c)
            if not (a_dev and b_dev and c_dev):
                worker.s_exec.wait_event(worker.s_h2d.record_event())
            self.ctx.gemm_async(
                a_view, b_view, c_view, worker.s_exec,
                alpha=self.alpha, beta=self.beta if l == 0 else 1.0,
                tag=f"gemm({i},{j},{l})" if self._tagged else "",
            )
            kernel_ev = worker.s_exec.record_event()
            if not a_dev:
                worker.a_slots[phase].guard = kernel_ev
            if not b_dev:
                worker.b_slots[phase].guard = kernel_ev
            if c_dev:
                self._c_order[(i, j)] = kernel_ev
            else:
                worker.s_d2h.wait_event(kernel_ev)
                r0, c0, _, _ = self.grid_c.tile_window(i, j)
                self.ctx.get_matrix_async(
                    c_view, c_host, r0, c0, worker.s_d2h,
                    tag=f"d2h:C({i},{j},{l})" if self._tagged else "")
                d2h_ev = worker.s_d2h.record_event()
                worker.c_slots[phase].guard = d2h_ev
                self._c_order[(i, j)] = d2h_ev

    def run(self):
        return self._timed_run(self._issue)

    def read_back_device_result(self) -> np.ndarray:
        """Assemble a device-resident C after the run (verification)."""
        if self._operand["C"].loc is not Loc.DEVICE:
            raise SchedulerError("C was written back to the host; read it there")
        m, n = self.grid_c.rows, self.grid_c.cols
        out = np.zeros((m, n), dtype=self.problem.dtype)
        for i in range(self.grid_c.row_tiles):
            for j in range(self.grid_c.col_tiles):
                view = self._resident.get(("C", i, j))
                if view is None or view.array is None:
                    raise SchedulerError("no data to read back (timing mode)")
                r0, c0, rows, cols = self.grid_c.tile_window(i, j)
                out[r0:r0 + rows, c0:c0 + cols] = view.array
        return out

    def release(self) -> None:
        for worker in self.workers:
            for slot in worker.all_slots():
                slot.free()
        for mat in self._resident_mats:
            mat.free()
        self._resident_mats.clear()
        self._resident.clear()


class CublasXtLibrary:
    """Public cuBLASXt-like entry point with a user-supplied tile size."""

    LIBRARY_NAME = "cuBLASXt"

    def __init__(self, machine: MachineConfig, nstreams: int = 4,
                 seed: int = 17) -> None:
        self.machine = machine
        self.nstreams = nstreams
        self._seed = seed
        self._calls = 0

    def gemm(
        self,
        m: Optional[int] = None,
        n: Optional[int] = None,
        k: Optional[int] = None,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
        dtype=np.float64,
        loc_a: Loc = Loc.HOST,
        loc_b: Loc = Loc.HOST,
        loc_c: Loc = Loc.HOST,
        alpha: float = 1.0,
        beta: float = 1.0,
        tile_size: int = DEFAULT_TILE,
    ) -> RunResult:
        """``C = alpha*A@B + beta*C`` with cuBLASXt-style pipelining."""
        arrays = (a, b, c)
        if any(x is not None for x in arrays):
            if any(x is None for x in arrays):
                raise BlasError("pass all of a, b, c or none of them")
            m, k = a.shape
            _, n = b.shape
            dtype = a.dtype
        if m is None or n is None or k is None:
            raise BlasError("gemm needs dims (m, n, k) or arrays")
        problem = gemm_problem(m, n, k, dtype, loc_a, loc_b, loc_c)
        self._calls += 1
        device = GpuDevice(self.machine, seed=self._seed + self._calls)
        ctx = CublasContext(device)
        hosts = {
            "A": _host_operand(problem, "A", a),
            "B": _host_operand(problem, "B", b),
            "C": _host_operand(problem, "C", c),
        }
        sched = CublasXtScheduler(
            ctx, problem, tile_size, hosts,
            alpha=alpha, beta=beta, nstreams=self.nstreams,
        )
        stats = sched.run()
        output = None
        if c is not None and loc_c is Loc.DEVICE:
            output = sched.read_back_device_result()
        sched.release()
        return RunResult(
            library=self.LIBRARY_NAME,
            routine=f"{prefix_for(dtype)}gemm",
            seconds=stats.seconds,
            flops=problem.flops(),
            tile_size=sched.t,
            h2d_bytes=stats.h2d_bytes,
            d2h_bytes=stats.d2h_bytes,
            h2d_transfers=stats.h2d_transfers,
            d2h_transfers=stats.d2h_transfers,
            kernels=stats.kernels,
            output=output,
        )
