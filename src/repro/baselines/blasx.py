"""BLASX-like baseline: fetch-once tile reuse, static tiling size.

Per the paper (Sections II-B.2 and V-E), BLASX improves on cuBLASXt
with a runtime tile-management engine that avoids re-transfers (the
same fetch-once reuse CoCoPeLia's scheduler implements), but its tiling
size is *static*, selected at compile time — the default the paper uses
is ``T = 2048``.  The performance gap between this baseline and
CoCoPeLia therefore isolates exactly the paper's contribution:
problem-aware tiling-size selection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.cublas import CublasContext
from ..core.params import Loc, gemm_problem, prefix_for
from ..errors import BlasError
from ..runtime.result import RunResult
from ..runtime.routines import _host_operand
from ..runtime.scheduler import GemmTileScheduler
from ..sim.device import GpuDevice
from ..sim.machine import MachineConfig

#: BLASX's compile-time default tiling size.
STATIC_TILE = 2048


class BlasXLibrary:
    """Public BLASX-like entry point (static ``T``, tile reuse)."""

    LIBRARY_NAME = "BLASX"

    def __init__(self, machine: MachineConfig, tile_size: int = STATIC_TILE,
                 seed: int = 29) -> None:
        self.machine = machine
        self.tile_size = tile_size
        self._seed = seed
        self._calls = 0

    def gemm(
        self,
        m: Optional[int] = None,
        n: Optional[int] = None,
        k: Optional[int] = None,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
        dtype=np.float64,
        loc_a: Loc = Loc.HOST,
        loc_b: Loc = Loc.HOST,
        loc_c: Loc = Loc.HOST,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> RunResult:
        """``C = alpha*A@B + beta*C`` with BLASX-style reuse, static T."""
        arrays = (a, b, c)
        if any(x is not None for x in arrays):
            if any(x is None for x in arrays):
                raise BlasError("pass all of a, b, c or none of them")
            m, k = a.shape
            _, n = b.shape
            dtype = a.dtype
        if m is None or n is None or k is None:
            raise BlasError("gemm needs dims (m, n, k) or arrays")
        problem = gemm_problem(m, n, k, dtype, loc_a, loc_b, loc_c)
        tile = min(self.tile_size, min(m, n, k))
        self._calls += 1
        device = GpuDevice(self.machine, seed=self._seed + self._calls)
        ctx = CublasContext(device)
        hosts = {
            "A": _host_operand(problem, "A", a),
            "B": _host_operand(problem, "B", b),
            "C": _host_operand(problem, "C", c),
        }
        sched = GemmTileScheduler(ctx, problem, tile, hosts,
                                  alpha=alpha, beta=beta)
        stats = sched.run()
        output = None
        if c is not None and loc_c is Loc.DEVICE:
            output = sched.read_back_device_result()
        sched.release()
        return RunResult(
            library=self.LIBRARY_NAME,
            routine=f"{prefix_for(dtype)}gemm",
            seconds=stats.seconds,
            flops=problem.flops(),
            tile_size=tile,
            h2d_bytes=stats.h2d_bytes,
            d2h_bytes=stats.d2h_bytes,
            h2d_transfers=stats.h2d_transfers,
            d2h_transfers=stats.d2h_transfers,
            kernels=stats.kernels,
            output=output,
        )
