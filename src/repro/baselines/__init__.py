"""Comparator libraries (paper Section V-E).

* :class:`CublasXtLibrary` — the state-of-practice NVIDIA library:
  square tiling, round-robin multi-stream pipelining with double
  buffering, **no** input-tile reuse, tiling size supplied by the user.
* :class:`BlasXLibrary` — BLASX-style: fetch-once tile reuse with a
  static, compile-time tiling size (default ``T = 2048``).
* :class:`UnifiedMemoryLibrary` — the unified-memory-with-prefetch
  daxpy baseline.
* :class:`SerialOffloadLibrary` — no overlap at all: transfer in,
  compute, transfer out (reference point for tests and ablations).
"""

from .cublasxt import CublasXtLibrary
from .blasx import BlasXLibrary
from .unified import UnifiedMemoryLibrary
from .serial import SerialOffloadLibrary

__all__ = [
    "CublasXtLibrary",
    "BlasXLibrary",
    "UnifiedMemoryLibrary",
    "SerialOffloadLibrary",
]
