"""Unified-memory daxpy baseline with prefetching.

The paper compares CoCoPeLia daxpy against "a unified memory
implementation with prefetching" (Section V-E).  No CUDA unified memory
exists in this substrate, so we model its two defining performance
characteristics, following the literature the paper cites on unified
memory overheads [3]-[5]:

* page migration moves data at a *reduced* effective bandwidth (fault
  handling, page-sized granularity) — the machine config's
  ``um_bandwidth_factor``;
* ``cudaMemPrefetchAsync`` hides part of the migration behind
  execution — migrations are chunked at prefetch granularity and
  pipelined against the kernel chunks, like a stream pipeline on the
  degraded link.

Implementation: run the chunked axpy pipeline on a shadow machine whose
link bandwidths are scaled by ``um_bandwidth_factor``, with a fixed
page-prefetch chunk size.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..backend.cublas import CublasContext
from ..core.params import Loc, axpy_problem, prefix_for
from ..errors import BlasError
from ..runtime.result import RunResult
from ..runtime.routines import _host_operand
from ..runtime.scheduler import AxpyTileScheduler
from ..sim.device import GpuDevice
from ..sim.link import LinkDirectionConfig
from ..sim.machine import MachineConfig

#: Elements per prefetch chunk (2 MiB pages * 16, a typical
#: cudaMemPrefetchAsync granularity for large vectors of doubles).
PREFETCH_CHUNK_ELEMS = 1 << 22


def _degraded_machine(machine: MachineConfig) -> MachineConfig:
    """The machine as seen through unified-memory page migration."""
    factor = machine.um_bandwidth_factor

    def scale(cfg: LinkDirectionConfig) -> LinkDirectionConfig:
        return LinkDirectionConfig(
            latency=cfg.latency / factor,  # fault handling adds latency
            bandwidth=cfg.bandwidth * factor,
            bid_slowdown=cfg.bid_slowdown,
        )

    return replace(machine, h2d=scale(machine.h2d), d2h=scale(machine.d2h),
                   name=f"{machine.name}-um")


class UnifiedMemoryLibrary:
    """Unified-memory-with-prefetch baseline (daxpy only)."""

    LIBRARY_NAME = "UnifiedMem"

    def __init__(self, machine: MachineConfig, seed: int = 37,
                 prefetch_elems: int = PREFETCH_CHUNK_ELEMS) -> None:
        self.machine = machine
        self._um_machine = _degraded_machine(machine)
        self._seed = seed
        self._calls = 0
        self.prefetch_elems = prefetch_elems

    def axpy(
        self,
        n: Optional[int] = None,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        dtype=np.float64,
        loc_x: Loc = Loc.HOST,
        loc_y: Loc = Loc.HOST,
        alpha: float = 1.0,
        tile_size: Optional[int] = None,
    ) -> RunResult:
        """``y = alpha*x + y`` through simulated unified memory.

        ``tile_size`` overrides the prefetch chunk (elements).
        """
        if x is not None or y is not None:
            if x is None or y is None:
                raise BlasError("pass both x and y or neither")
            n = x.shape[0]
            dtype = x.dtype
        if n is None:
            raise BlasError("axpy needs n or arrays")
        problem = axpy_problem(n, dtype, loc_x, loc_y)
        self._calls += 1
        device = GpuDevice(self._um_machine, seed=self._seed + self._calls)
        ctx = CublasContext(device)
        hosts = {
            "x": _host_operand(problem, "x", x),
            "y": _host_operand(problem, "y", y),
        }
        chunk = min(tile_size if tile_size is not None else
                    self.prefetch_elems, n)
        sched = AxpyTileScheduler(ctx, problem, chunk, hosts, alpha=alpha)
        stats = sched.run()
        output = None
        if y is not None and loc_y is Loc.DEVICE:
            output = sched.read_back_device_result()
        sched.release()
        return RunResult(
            library=self.LIBRARY_NAME,
            routine=f"{prefix_for(dtype)}axpy",
            seconds=stats.seconds,
            flops=problem.flops(),
            tile_size=chunk,
            h2d_bytes=stats.h2d_bytes,
            d2h_bytes=stats.d2h_bytes,
            h2d_transfers=stats.h2d_transfers,
            d2h_transfers=stats.d2h_transfers,
            kernels=stats.kernels,
            output=output,
        )
