"""Serial (no-overlap) offload baseline.

The naive offload pattern prior work measures against: transfer all
inputs host-to-device, run the routine as one kernel, transfer the
output back — no pipelining at all.  Useful as a sanity floor in tests
("overlap must beat serial") and as the reference point for ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.cublas import CublasContext
from ..core.params import Loc, axpy_problem, gemm_problem, prefix_for
from ..errors import BlasError
from ..runtime.result import RunResult
from ..runtime.routines import _host_operand
from ..sim.device import GpuDevice
from ..sim.machine import MachineConfig


class SerialOffloadLibrary:
    """One-shot transfer-compute-transfer offload (no concurrency)."""

    LIBRARY_NAME = "Serial"

    def __init__(self, machine: MachineConfig, seed: int = 41) -> None:
        self.machine = machine
        self._seed = seed
        self._calls = 0

    def _device(self) -> GpuDevice:
        self._calls += 1
        return GpuDevice(self.machine, seed=self._seed + self._calls)

    def gemm(
        self,
        m: Optional[int] = None,
        n: Optional[int] = None,
        k: Optional[int] = None,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
        dtype=np.float64,
        loc_a: Loc = Loc.HOST,
        loc_b: Loc = Loc.HOST,
        loc_c: Loc = Loc.HOST,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> RunResult:
        """``C = alpha*A@B + beta*C`` with serial full-matrix offload."""
        arrays = (a, b, c)
        if any(x is not None for x in arrays):
            if any(x is None for x in arrays):
                raise BlasError("pass all of a, b, c or none of them")
            m, k = a.shape
            _, n = b.shape
            dtype = a.dtype
        if m is None or n is None or k is None:
            raise BlasError("gemm needs dims (m, n, k) or arrays")
        problem = gemm_problem(m, n, k, dtype, loc_a, loc_b, loc_c)
        device = self._device()
        ctx = CublasContext(device)
        hosts = {
            "A": _host_operand(problem, "A", a),
            "B": _host_operand(problem, "B", b),
            "C": _host_operand(problem, "C", c),
        }
        with_data = a is not None
        stream = device.create_stream("serial")
        mats = {}
        t0 = device.sim.now
        for op in problem.operands:
            host = hosts[op.name]
            mat = ctx.alloc_matrix(op.s1, op.s2, dtype, with_data=with_data,
                                   name=op.name)
            mats[op.name] = mat
            if op.loc is Loc.DEVICE:
                if with_data:
                    mat.array[:, :] = host.array
            elif op.spec.role.is_input:
                ctx.set_matrix_async(host, 0, 0, mat, stream,
                                     tag=f"h2d:{op.name}")
        ctx.gemm_async(mats["A"], mats["B"], mats["C"], stream,
                       alpha=alpha, beta=beta, tag="gemm-full")
        c_op = next(op for op in problem.operands if op.name == "C")
        if c_op.set:
            ctx.get_matrix_async(mats["C"], hosts["C"], 0, 0, stream,
                                 tag="d2h:C")
        end = device.synchronize()
        output = None
        if with_data and loc_c is Loc.DEVICE:
            output = mats["C"].array.copy()
        for mat in mats.values():
            mat.free()
        return RunResult(
            library=self.LIBRARY_NAME,
            routine=f"{prefix_for(dtype)}gemm",
            seconds=end - t0,
            flops=problem.flops(),
            tile_size=max(m, n, k),
            kernels=1,
            output=output,
        )

    def axpy(
        self,
        n: Optional[int] = None,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        dtype=np.float64,
        loc_x: Loc = Loc.HOST,
        loc_y: Loc = Loc.HOST,
        alpha: float = 1.0,
    ) -> RunResult:
        """``y = alpha*x + y`` with serial full-vector offload."""
        if x is not None or y is not None:
            if x is None or y is None:
                raise BlasError("pass both x and y or neither")
            n = x.shape[0]
            dtype = x.dtype
        if n is None:
            raise BlasError("axpy needs n or arrays")
        problem = axpy_problem(n, dtype, loc_x, loc_y)
        device = self._device()
        ctx = CublasContext(device)
        hosts = {
            "x": _host_operand(problem, "x", x),
            "y": _host_operand(problem, "y", y),
        }
        with_data = x is not None
        stream = device.create_stream("serial")
        vecs = {}
        t0 = device.sim.now
        for op in problem.operands:
            host = hosts[op.name]
            vec = ctx.alloc_vector(op.s1, dtype, with_data=with_data,
                                   name=op.name)
            vecs[op.name] = vec
            if op.loc is Loc.DEVICE:
                if with_data:
                    vec.array[:] = host.array
            else:
                ctx.set_vector_async(host, 0, vec, stream, tag=f"h2d:{op.name}")
        ctx.axpy_async(vecs["x"], vecs["y"], stream, alpha=alpha,
                       tag="axpy-full")
        y_op = next(op for op in problem.operands if op.name == "y")
        if y_op.set:
            ctx.get_vector_async(vecs["y"], hosts["y"], 0, stream, tag="d2h:y")
        end = device.synchronize()
        output = None
        if with_data and loc_y is Loc.DEVICE:
            output = vecs["y"].array.copy()
        for vec in vecs.values():
            vec.free()
        return RunResult(
            library=self.LIBRARY_NAME,
            routine=f"{prefix_for(dtype)}axpy",
            seconds=end - t0,
            flops=problem.flops(),
            tile_size=n,
            kernels=1,
            output=output,
        )
