"""Discrete-event simulated GPU system.

This package is the hardware substitute for the CUDA testbeds used in
the CoCoPeLia paper: a simulated host + GPU with a duplex PCIe link
(separate h2d/d2h copy engines contending on a shared medium), a compute
engine with non-linear BLAS kernel timing, CUDA-like streams/events, and
device memory accounting.  See DESIGN.md section 2 for the substitution
rationale.
"""

from .calendar import CalendarQueue
from .engine import (
    Simulator,
    get_default_scheduler,
    set_default_scheduler,
    use_scheduler,
)
from .fluid import FLUID_MIN_FLOW_RATIO, FLUID_MIN_WINDOW, FluidFlow, FluidStats
from .faults import (
    DeviceDegradation,
    DeviceFailure,
    FaultInjector,
    FaultPlan,
    LIFECYCLE_KINDS,
    LifecycleFault,
    LinkBrownout,
    NAMED_PLANS,
    ResilienceCounters,
    RetryPolicy,
    resolve_plan,
    tile_checksum,
)
from .interconnect import (
    CollectiveHandle,
    Interconnect,
    TOPOLOGY_KINDS,
    TopologySpec,
    all_to_all_topology,
    ring_topology,
)
from .link import DuplexLink, Direction, LinkDirectionConfig
from .kernels import GemmTimeModel, AxpyTimeModel, KernelModelSet
from .machine import MachineConfig, testbed_i, testbed_ii, get_testbed, TESTBEDS
from .memory import DeviceBuffer, HostArray
from .noise import NoiseModel
from .device import GpuDevice
from .stream import Stream, CudaEvent
from .trace import TraceRecorder, TraceEvent, render_timeline

__all__ = [
    "Simulator",
    "CalendarQueue",
    "get_default_scheduler",
    "set_default_scheduler",
    "use_scheduler",
    "FLUID_MIN_FLOW_RATIO",
    "FLUID_MIN_WINDOW",
    "FluidFlow",
    "FluidStats",
    "DeviceDegradation",
    "DeviceFailure",
    "FaultInjector",
    "FaultPlan",
    "LIFECYCLE_KINDS",
    "LifecycleFault",
    "LinkBrownout",
    "NAMED_PLANS",
    "ResilienceCounters",
    "RetryPolicy",
    "resolve_plan",
    "tile_checksum",
    "CollectiveHandle",
    "Interconnect",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "all_to_all_topology",
    "ring_topology",
    "DuplexLink",
    "Direction",
    "LinkDirectionConfig",
    "GemmTimeModel",
    "AxpyTimeModel",
    "KernelModelSet",
    "MachineConfig",
    "testbed_i",
    "testbed_ii",
    "get_testbed",
    "TESTBEDS",
    "DeviceBuffer",
    "HostArray",
    "NoiseModel",
    "GpuDevice",
    "Stream",
    "CudaEvent",
    "TraceRecorder",
    "TraceEvent",
    "render_timeline",
]
