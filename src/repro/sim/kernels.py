"""Ground-truth kernel execution-time models for the simulated GPU.

The CoCoPeLia paper stresses three non-linearities of real BLAS kernels
that break earlier overlap models (Section III-A.1):

1. small sub-problems underutilize the GPU (occupancy);
2. performance depends on problem *shape*, not just working-set size;
3. some architectures (the V100 of Testbed II) show performance spikes
   at particular sizes.

These models implement all three so the simulated machine punishes the
same simplifying assumptions the paper punishes.  They are *ground
truth*: the prediction models in :mod:`repro.core` never see these
formulas — they only see micro-benchmark measurements of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import BlasError
from ..units import dtype_size

#: Fraction of the nominal duration an injected kernel fault occupies
#: the compute engine before aborting (on average a fault is detected
#: about halfway through the launch).
FAULT_ABORT_FRACTION = 0.5


def faulted_kernel_time(duration: float) -> float:
    """Engine-occupancy time of a kernel launch that aborts mid-run."""
    return duration * FAULT_ABORT_FRACTION


def _wobble01(*dims: int) -> float:
    """Deterministic pseudo-random value in [0, 1) from the dims.

    Classic shader-style hash; cheap, stateless, and stable across runs,
    which keeps the 'architecture spikes' reproducible.
    """
    x = math.sin(dims[0] * 12.9898 + dims[1] * 78.233 + dims[2] * 37.719)
    x *= 43758.5453
    return x - math.floor(x)


@dataclass(frozen=True)
class GemmTimeModel:
    """Execution time of a (possibly non-square) gemm kernel.

    peak_flops
        Architectural peak for this precision, in FLOP/s.
    launch_overhead
        Fixed per-kernel launch cost in seconds.
    mn_block
        Thread-block tile edge for M and N; dims are padded up to it.
    k_block
        Internal K unrolling granularity; K is padded up to it.
    grid_half
        Number of thread blocks at which occupancy reaches 50% of its
        asymptote (small grids underutilize the SMs).
    k_half
        K extent at which the accumulation pipeline reaches 50%
        efficiency.
    max_eff
        Asymptotic fraction of peak achievable by the library kernel.
    spike_amp
        Amplitude of the deterministic per-shape performance wobble
        (Testbed II's V100 has visible spikes; Testbed I barely).
    """

    peak_flops: float
    launch_overhead: float = 7e-6
    mn_block: int = 128
    k_block: int = 32
    grid_half: float = 12.0
    k_half: float = 192.0
    max_eff: float = 0.92
    spike_amp: float = 0.0

    def efficiency(self, m: int, n: int, k: int) -> float:
        """Fraction of peak achieved by an ``m x n x k`` kernel."""
        if min(m, n, k) <= 0:
            raise BlasError(f"non-positive gemm dims: {(m, n, k)}")
        blocks_m = math.ceil(m / self.mn_block)
        blocks_n = math.ceil(n / self.mn_block)
        grid = blocks_m * blocks_n
        # Tile quantization: padded work is wasted work.
        padded = (
            blocks_m * self.mn_block
            * blocks_n * self.mn_block
            * math.ceil(k / self.k_block) * self.k_block
        )
        quant = (m * n * k) / padded
        # Occupancy: few thread blocks leave SMs idle.
        occupancy = grid / (grid + self.grid_half)
        # Accumulation-pipeline depth along K.
        k_eff = k / (k + self.k_half)
        eff = self.max_eff * quant * occupancy * k_eff
        if self.spike_amp > 0.0:
            eff *= 1.0 + self.spike_amp * (2.0 * _wobble01(m, n, k) - 1.0)
        return eff

    def time(self, m: int, n: int, k: int) -> float:
        """Wall time in seconds for one gemm kernel."""
        flops = 2.0 * m * n * k
        return self.launch_overhead + flops / (self.peak_flops * self.efficiency(m, n, k))


@dataclass(frozen=True)
class AxpyTimeModel:
    """Execution time of an axpy kernel (memory-bound level-1 BLAS).

    ``y = a*x + y`` reads x and y and writes y: three element accesses.
    Effective device-memory bandwidth saturates with vector length.
    """

    mem_bandwidth: float
    launch_overhead: float = 7e-6
    n_half: float = 1 << 18
    max_eff: float = 0.88

    def efficiency(self, n: int) -> float:
        if n <= 0:
            raise BlasError(f"non-positive axpy length: {n}")
        return self.max_eff * n / (n + self.n_half)

    def time(self, n: int, dtype) -> float:
        nbytes = 3.0 * n * dtype_size(dtype)
        return self.launch_overhead + nbytes / (self.mem_bandwidth * self.efficiency(n))


@dataclass(frozen=True)
class GemvTimeModel:
    """Execution time of a gemv kernel (memory-bound level-2 BLAS).

    ``y = alpha*A@x + beta*y`` streams the m x n matrix once and touches
    the two vectors; effective bandwidth degrades for short rows
    (reduction inefficiency) and small matrices (occupancy).
    """

    mem_bandwidth: float
    launch_overhead: float = 7e-6
    rows_half: float = 2048.0
    cols_half: float = 512.0
    max_eff: float = 0.85

    def efficiency(self, m: int, n: int) -> float:
        if m <= 0 or n <= 0:
            raise BlasError(f"non-positive gemv dims: {(m, n)}")
        return (self.max_eff
                * m / (m + self.rows_half)
                * n / (n + self.cols_half))

    def time(self, m: int, n: int, dtype) -> float:
        nbytes = (m * n + n + 2 * m) * dtype_size(dtype)
        return self.launch_overhead + nbytes / (
            self.mem_bandwidth * self.efficiency(m, n))


class KernelModelSet:
    """Maps (routine, dtype) to the machine's ground-truth time model."""

    def __init__(self, gemm_f64: GemmTimeModel, gemm_f32: GemmTimeModel,
                 axpy: AxpyTimeModel,
                 gemv: "GemvTimeModel | None" = None) -> None:
        self._gemm = {8: gemm_f64, 4: gemm_f32}
        self._axpy = axpy
        # gemv shares the device-memory bandwidth with axpy by default.
        self._gemv = gemv if gemv is not None else GemvTimeModel(
            mem_bandwidth=axpy.mem_bandwidth,
            launch_overhead=axpy.launch_overhead,
        )

    def gemm(self, dtype) -> GemmTimeModel:
        return self._gemm[dtype_size(dtype)]

    def axpy(self) -> AxpyTimeModel:
        return self._axpy

    def gemv(self) -> "GemvTimeModel":
        return self._gemv

    def gemm_time(self, m: int, n: int, k: int, dtype) -> float:
        return self.gemm(dtype).time(m, n, k)

    def axpy_time(self, n: int, dtype) -> float:
        return self._axpy.time(n, dtype)

    def gemv_time(self, m: int, n: int, dtype) -> float:
        return self._gemv.time(m, n, dtype)

    def scaled(self, factor: float) -> "KernelModelSet":
        """A copy with every kernel ``factor`` times slower.

        Models a clocked-down (thermally throttled / degraded) device:
        sustained rates shrink uniformly while launch overheads — host
        driver costs — stay put.  ``factor == 1`` returns ``self`` so
        the healthy path shares the original (memoized) models.
        """
        if factor == 1.0:
            return self
        if not factor > 0.0 or not math.isfinite(factor):
            raise BlasError(
                f"kernel slowdown factor must be finite and > 0, got "
                f"{factor}")
        return KernelModelSet(
            replace(self._gemm[8], peak_flops=self._gemm[8].peak_flops
                    / factor),
            replace(self._gemm[4], peak_flops=self._gemm[4].peak_flops
                    / factor),
            replace(self._axpy, mem_bandwidth=self._axpy.mem_bandwidth
                    / factor),
            gemv=replace(self._gemv, mem_bandwidth=self._gemv.mem_bandwidth
                         / factor),
        )
