"""Simulated inter-GPU interconnect: peer-link topologies + collectives.

The single-GPU pipeline overlaps PCIe with kernels; at multi-GPU scale
the bottleneck moves to the *inter-GPU* network, so this module gives
the simulator a peer fabric the distributed routines (SUMMA gemm,
streaming gemv — see ``repro.runtime.summa`` / ``streaming``) can
schedule against:

* :class:`TopologySpec` — ground-truth description of the fabric: the
  wiring ``kind`` (``ring`` or ``all_to_all``), GPU count, and per-hop
  latency/bandwidth/bidirectional-slowdown.  This is the analog of
  :class:`~repro.sim.machine.MachineConfig` for the peer network; the
  prediction models in ``repro.core.distributed`` read the same spec
  (it is the *deployed* interconnect description, like a fitted link
  model, not a hidden ground truth).
* :class:`Interconnect` — one :class:`~repro.sim.link.DuplexLink` per
  connected GPU pair, reusing the PCIe link's FIFO + bidirectional
  contention machinery; direction names are overridden to
  ``peer{i}>{j}`` so merged traces show collective spans as their own
  transfer engines.
* Collectives — ``send`` (store-and-forward routing), ``broadcast`` /
  ``multicast`` (full-payload chain on a ring, parallel direct sends
  all-to-all), and ``pipelined_broadcast`` (payload split into panels;
  per-link FIFO naturally overlaps panel ``p``'s hop ``h+1`` with
  panel ``p+1``'s hop ``h``, the classic pipelined-ring broadcast).

Payload conservation (pinned by property tests): a ring chain moves the
full payload once per hop, so a broadcast to ``d`` destinations puts
exactly ``d * payload`` bytes on the fabric in either wiring; the
handle's ``hop_bytes`` counter exposes that invariant.

Peer links carry no noise model and no fault injector: the fabric is
deterministic by construction, so distributed makespans vary only
through the per-device kernel/PCIe noise substreams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..units import from_gb_per_s
from .engine import Simulator
from .link import Direction, DuplexLink, LinkDirectionConfig
from .trace import TraceRecorder

#: Supported wiring kinds.
TOPOLOGY_KINDS = ("ring", "all_to_all")

#: Collective/transfer kinds recorded on handles.
KIND_SEND = "send"
KIND_BROADCAST = "broadcast"
KIND_MULTICAST = "multicast"
KIND_PIPELINED = "pipelined_broadcast"


@dataclass(frozen=True)
class TopologySpec:
    """Ground-truth peer-fabric description (homogeneous links).

    ``bandwidth`` may be ``math.inf`` (with ``latency`` 0 this is the
    zero-cost fabric the multi-GPU retrofit pin tests use: any wiring
    collapses to the same schedule).
    """

    kind: str
    n_gpus: int
    latency: float
    bandwidth: float
    bid_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise SimulationError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}"
            )
        if self.n_gpus < 1:
            raise SimulationError(
                f"topology needs at least one GPU, got {self.n_gpus}")
        if not (self.latency >= 0.0 and math.isfinite(self.latency)):
            raise SimulationError(
                f"per-hop latency must be finite and >= 0, got {self.latency}")
        if not self.bandwidth > 0.0:
            raise SimulationError(
                f"per-hop bandwidth must be > 0, got {self.bandwidth}")
        if not self.bid_slowdown >= 1.0:
            raise SimulationError(
                f"bid_slowdown must be >= 1, got {self.bid_slowdown}")

    # ------------------------------------------------------------------

    def hop_time(self, nbytes: int) -> float:
        """Uncontended time of one hop carrying ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def hops(self, src: int, dst: int) -> int:
        """Store-and-forward hops from ``src`` to ``dst``."""
        if src == dst:
            return 0
        if self.kind == "all_to_all":
            return 1
        return (dst - src) % self.n_gpus

    def broadcast_hops(self, n_dests: int) -> int:
        """Serial hop depth until the *last* destination holds the payload."""
        if n_dests <= 0:
            return 0
        return n_dests if self.kind == "ring" else 1

    def signature(self) -> Tuple:
        """Hashable identity for prediction-cache keys."""
        return (self.kind, self.n_gpus, self.latency, self.bandwidth,
                self.bid_slowdown)


def ring_topology(n_gpus: int, gb_per_s: float = 8.0,
                  latency: float = 5e-6,
                  bid_slowdown: float = 1.0) -> TopologySpec:
    """Unidirectional-routed ring (payloads forwarded clockwise)."""
    bw = math.inf if math.isinf(gb_per_s) else from_gb_per_s(gb_per_s)
    return TopologySpec("ring", n_gpus, latency, bw, bid_slowdown)


def all_to_all_topology(n_gpus: int, gb_per_s: float = 12.0,
                        latency: float = 5e-6,
                        bid_slowdown: float = 1.0) -> TopologySpec:
    """Fully connected fabric: every pair has a direct duplex link."""
    bw = math.inf if math.isinf(gb_per_s) else from_gb_per_s(gb_per_s)
    return TopologySpec("all_to_all", n_gpus, latency, bw, bid_slowdown)


@dataclass
class CollectiveHandle:
    """Progress/accounting of one collective (or point-to-point send).

    ``arrived`` maps each destination to its simulated arrival time;
    ``hop_bytes``/``hops`` count the total fabric traffic this
    operation caused (payload conservation: a chain moves the payload
    once per hop).
    """

    kind: str
    root: int
    dests: Tuple[int, ...]
    nbytes: int
    start_time: float
    n_panels: int = 1
    done: bool = False
    end_time: Optional[float] = None
    arrived: Dict[int, float] = field(default_factory=dict)
    hop_bytes: int = 0
    hops: int = 0


class Interconnect:
    """Peer links between the GPUs of one shared-clock simulator.

    All callbacks (``on_arrive(gpu)``, ``on_panel(gpu, panel)``,
    ``on_complete()``) fire inside the simulator's event loop at the
    corresponding virtual times, so runtimes can launch kernels the
    instant an operand lands (the comm/comp overlap the distributed
    pipelines are built on).
    """

    def __init__(self, sim: Simulator, spec: TopologySpec,
                 trace: bool = False, metrics=None) -> None:
        self.sim = sim
        self.spec = spec
        self.trace: Optional[TraceRecorder] = TraceRecorder() if trace else None
        self._metrics = metrics
        cfg = LinkDirectionConfig(spec.latency, spec.bandwidth,
                                  spec.bid_slowdown)
        self._links: Dict[Tuple[int, int], DuplexLink] = {}
        for i, j in self._pairs():
            self._links[(i, j)] = DuplexLink(
                sim, cfg, cfg, noise=None, trace=self.trace,
                metrics=metrics, names=(f"peer{i}>{j}", f"peer{j}>{i}"),
            )
        #: Fabric-wide traffic counters (all collectives, all links).
        self.total_hops = 0
        self.total_hop_bytes = 0

    def _pairs(self) -> List[Tuple[int, int]]:
        n = self.spec.n_gpus
        if n < 2:
            return []
        if self.spec.kind == "all_to_all":
            return [(i, j) for i in range(n) for j in range(i + 1, n)]
        pairs = {tuple(sorted((g, (g + 1) % n))) for g in range(n)}
        return sorted(pairs)  # ring: n links (1 link when n == 2)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def link(self, i: int, j: int) -> DuplexLink:
        """The duplex link of pair ``{i, j}`` (tests/inspection)."""
        return self._links[(min(i, j), max(i, j))]

    # ------------------------------------------------------------------

    def _check_gpu(self, g: int, what: str) -> None:
        if not 0 <= g < self.spec.n_gpus:
            raise SimulationError(
                f"{what} {g} out of range for {self.spec.n_gpus} GPUs")

    def _submit_hop(self, src: int, dst: int, nbytes: int,
                    on_complete: Callable[[], None], tag: str) -> None:
        """One direct-link hop ``src -> dst`` (must be adjacent)."""
        i, j = min(src, dst), max(src, dst)
        link = self._links.get((i, j))
        if link is None:
            raise SimulationError(
                f"no direct link between GPU {src} and GPU {dst} "
                f"on a {self.spec.kind} topology")
        direction = Direction.H2D if src < dst else Direction.D2H
        link.submit(direction, nbytes, on_complete=on_complete, tag=tag)

    def _next_hop(self, src: int, dst: int) -> int:
        """Routing: direct on all_to_all, clockwise on a ring."""
        if self.spec.kind == "all_to_all":
            return dst
        return (src + 1) % self.spec.n_gpus

    def _count_hop(self, handle: CollectiveHandle, nbytes: int) -> None:
        handle.hops += 1
        handle.hop_bytes += nbytes
        self.total_hops += 1
        self.total_hop_bytes += nbytes

    def _arrive(self, handle: CollectiveHandle, node: int,
                on_arrive: Optional[Callable[[int], None]],
                on_complete: Optional[Callable[[], None]]) -> None:
        handle.arrived[node] = self.sim.now
        if on_arrive is not None:
            on_arrive(node)
        if len(handle.arrived) == len(handle.dests):
            handle.done = True
            handle.end_time = self.sim.now
            if on_complete is not None:
                on_complete()

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int,
             on_complete: Optional[Callable[[], None]] = None,
             tag: str = "") -> CollectiveHandle:
        """Store-and-forward transfer ``src -> dst``."""
        self._check_gpu(src, "send source")
        self._check_gpu(dst, "send destination")
        if src == dst:
            raise SimulationError(f"send source == destination ({src})")
        if nbytes <= 0:
            raise SimulationError(f"send needs nbytes > 0, got {nbytes}")
        handle = CollectiveHandle(
            kind=KIND_SEND, root=src, dests=(dst,), nbytes=nbytes,
            start_time=self.sim.now,
        )

        def hop_from(cur: int) -> None:
            nxt = self._next_hop(cur, dst)

            def landed() -> None:
                self._count_hop(handle, nbytes)
                if nxt == dst:
                    self._arrive(handle, dst, None, on_complete)
                else:
                    hop_from(nxt)

            self._submit_hop(cur, nxt, nbytes, landed, tag)

        hop_from(src)
        return handle

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def broadcast(self, root: int, nbytes: int,
                  on_arrive: Optional[Callable[[int], None]] = None,
                  on_complete: Optional[Callable[[], None]] = None,
                  tag: str = "") -> CollectiveHandle:
        """Full payload from ``root`` to every other GPU."""
        dests = tuple(g for g in range(self.spec.n_gpus) if g != root)
        return self.multicast(root, dests, nbytes, on_arrive=on_arrive,
                              on_complete=on_complete, tag=tag,
                              _kind=KIND_BROADCAST)

    def multicast(self, root: int, dests: Sequence[int], nbytes: int,
                  on_arrive: Optional[Callable[[int], None]] = None,
                  on_complete: Optional[Callable[[], None]] = None,
                  tag: str = "", _kind: str = KIND_MULTICAST,
                  ) -> CollectiveHandle:
        """Full payload from ``root`` to a destination subset.

        All-to-all wiring sends directly to every destination (distinct
        links, truly parallel); a ring forwards clockwise through
        intermediate GPUs up to the farthest destination — non-member
        GPUs on the path store-and-forward without an arrival callback.
        An empty ``dests`` completes immediately (degenerate 1-GPU
        collective), so callers need no special casing.
        """
        self._check_gpu(root, "multicast root")
        dest_set = self._check_dests(root, dests)
        handle = CollectiveHandle(
            kind=_kind, root=root, dests=tuple(sorted(dest_set)),
            nbytes=nbytes, start_time=self.sim.now,
        )
        if not dest_set:
            handle.done = True
            handle.end_time = self.sim.now
            if on_complete is not None:
                on_complete()
            return handle
        if nbytes <= 0:
            raise SimulationError(
                f"multicast needs nbytes > 0, got {nbytes}")

        if self.spec.kind == "all_to_all":
            for dst in handle.dests:
                def landed(dst: int = dst) -> None:
                    self._count_hop(handle, nbytes)
                    self._arrive(handle, dst, on_arrive, on_complete)

                self._submit_hop(root, dst, nbytes, landed, tag)
            return handle

        n = self.spec.n_gpus
        max_dist = max((d - root) % n for d in dest_set)

        def forward(step: int) -> None:
            cur = (root + step) % n
            nxt = (root + step + 1) % n

            def landed() -> None:
                self._count_hop(handle, nbytes)
                if step + 1 < max_dist:
                    forward(step + 1)
                if nxt in dest_set:
                    self._arrive(handle, nxt, on_arrive, on_complete)

            self._submit_hop(cur, nxt, nbytes, landed, tag)

        forward(0)
        return handle

    def pipelined_broadcast(self, root: int, nbytes: int, n_panels: int,
                            dests: Optional[Sequence[int]] = None,
                            on_panel: Optional[
                                Callable[[int, int], None]] = None,
                            on_arrive: Optional[
                                Callable[[int], None]] = None,
                            on_complete: Optional[
                                Callable[[], None]] = None,
                            tag: str = "") -> CollectiveHandle:
        """Panel-split broadcast overlapping hops across panels.

        The payload is split into ``n_panels`` near-equal chunks, each
        forwarded independently along the chain; per-link FIFO order
        pipelines them, so on a ring the last destination finishes after
        ``(d - 1)`` fill hops plus ``n_panels`` panel slots instead of
        ``d`` full-payload hops.  ``on_panel(gpu, panel)`` fires per
        panel landing; ``on_arrive(gpu)`` once all panels landed.
        """
        self._check_gpu(root, "broadcast root")
        if dests is None:
            dests = tuple(g for g in range(self.spec.n_gpus) if g != root)
        dest_set = self._check_dests(root, dests)
        if not 1 <= n_panels:
            raise SimulationError(
                f"pipelined broadcast needs n_panels >= 1, got {n_panels}")
        handle = CollectiveHandle(
            kind=KIND_PIPELINED, root=root, dests=tuple(sorted(dest_set)),
            nbytes=nbytes, start_time=self.sim.now, n_panels=n_panels,
        )
        if not dest_set:
            handle.done = True
            handle.end_time = self.sim.now
            if on_complete is not None:
                on_complete()
            return handle
        if nbytes < n_panels:
            raise SimulationError(
                f"cannot split {nbytes} bytes into {n_panels} panels")
        base, extra = divmod(nbytes, n_panels)
        sizes = [base + 1] * extra + [base] * (n_panels - extra)
        landed_count = {d: 0 for d in dest_set}

        def panel_landed(node: int, panel: int) -> None:
            if on_panel is not None:
                on_panel(node, panel)
            landed_count[node] += 1
            if landed_count[node] == n_panels:
                self._arrive(handle, node, on_arrive, on_complete)

        if self.spec.kind == "all_to_all":
            for dst in handle.dests:
                for p, size in enumerate(sizes):
                    def landed(dst: int = dst, p: int = p,
                               size: int = size) -> None:
                        self._count_hop(handle, size)
                        panel_landed(dst, p)

                    self._submit_hop(root, dst, size, landed, tag)
            return handle

        n = self.spec.n_gpus
        max_dist = max((d - root) % n for d in dest_set)

        def forward(panel: int, step: int) -> None:
            size = sizes[panel]
            cur = (root + step) % n
            nxt = (root + step + 1) % n

            def landed() -> None:
                self._count_hop(handle, size)
                if step + 1 < max_dist:
                    forward(panel, step + 1)
                if nxt in dest_set:
                    panel_landed(nxt, panel)

            self._submit_hop(cur, nxt, size, landed, tag)

        for p in range(n_panels):  # FIFO on the first link pipelines them
            forward(p, 0)
        return handle

    # ------------------------------------------------------------------

    def _check_dests(self, root: int, dests: Sequence[int]) -> frozenset:
        seen = set()
        for d in dests:
            self._check_gpu(d, "collective destination")
            if d == root:
                raise SimulationError(
                    f"collective root {root} cannot be a destination")
            if d in seen:
                raise SimulationError(f"duplicate destination {d}")
            seen.add(d)
        return frozenset(seen)

    def stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-engine (transfers, bytes) across all peer links."""
        out: Dict[str, Tuple[int, int]] = {}
        for (i, j), link in sorted(self._links.items()):
            fwd = link.stats(Direction.H2D)
            rev = link.stats(Direction.D2H)
            out[f"peer{i}>{j}"] = (fwd.transfers, fwd.bytes_moved)
            out[f"peer{j}>{i}"] = (rev.transfers, rev.bytes_moved)
        return out
