"""Duplex host-device link with bidirectional contention.

Models the PCIe behaviour the CoCoPeLia paper's BTS model is about:

* separate h2d and d2h copy engines, each processing one transfer at a
  time in FIFO order;
* a per-transfer fixed latency (setup) phase followed by a byte-flow
  phase at the direction's bandwidth;
* an *asymmetric bidirectional slowdown*: while both directions are in
  their byte-flow phase simultaneously, each direction's rate drops by
  its own slowdown factor (d2h is typically hurt more, per the paper).

The byte-flow phase is a fluid model: when the opposite direction starts
or stops flowing, the in-flight transfer is re-planned — bytes done so
far are integrated at the old rate and the completion event is
rescheduled at the new rate.  This is what produces the partial-overlap
behaviour of the paper's Eq. 3 as *ground truth*.

Hot-path notes: this module fires a handful of callbacks per simulated
transfer, so the inner machinery avoids per-event allocations and
per-call lookups — direction state is held in plain slotted objects
linked via ``other`` (no enum-keyed dict on the transfer path), the
latency/flow/completion callbacks are bound once per direction instead
of a fresh lambda per event, and metric handles are resolved at
construction.  The event timing and firing order are identical to the
original implementation.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, Dict, Optional

from ..errors import InvalidTransferError, SimulationError
from .engine import ScheduledEvent, Simulator
from .faults import FaultInjector
from .noise import NoiseModel


class Direction(enum.Enum):
    """Transfer direction over the duplex link."""

    H2D = "h2d"
    D2H = "d2h"

    @property
    def opposite(self) -> "Direction":
        return Direction.D2H if self is Direction.H2D else Direction.H2D


@dataclass(frozen=True)
class LinkDirectionConfig:
    """Ground-truth parameters for one link direction.

    latency
        Per-transfer setup time in seconds (the paper's ``t_l``).
    bandwidth
        Unidirectional byte rate in bytes/second (``1/t_b``).
    bid_slowdown
        Factor (>= 1) by which this direction slows while the opposite
        direction is also flowing (the paper's ``sl``).
    """

    latency: float
    bandwidth: float
    bid_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise InvalidTransferError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise InvalidTransferError(f"non-positive bandwidth: {self.bandwidth}")
        if self.bid_slowdown < 1.0:
            raise InvalidTransferError(
                f"bidirectional slowdown must be >= 1, got {self.bid_slowdown}"
            )


# Flow phases as plain ints: module constants are cheaper to read and
# compare than enum members on the per-event path.
_IDLE = 0
_LATENCY = 1
_FLOW = 2


class _Job:
    """One queued or in-flight transfer."""

    __slots__ = (
        "nbytes",
        "on_complete",
        "on_fault",
        "tag",
        "remaining",
        "rate_scale",
        "fail",
        "submit_time",
        "start_time",
    )

    def __init__(
        self,
        nbytes: int,
        on_complete: Optional[Callable[[], None]],
        tag: str,
        rate_scale: float,
    ) -> None:
        self.nbytes = nbytes
        self.on_complete = on_complete
        #: fires instead of ``on_complete`` when the transfer fails
        self.on_fault: Optional[Callable[[], None]] = None
        self.tag = tag
        self.remaining = float(nbytes)
        #: multiplicative noise on this job's effective bandwidth
        self.rate_scale = rate_scale
        #: injected transient failure: occupies the link, then fails
        self.fail = False
        self.submit_time: float = 0.0
        self.start_time: float = 0.0


@dataclass
class DirectionStats:
    """Aggregate counters for one direction, for tests and reports."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_time: float = 0.0
    flow_time: float = 0.0
    bid_overlap_time: float = 0.0
    #: injected transient failures (each occupied the link fully)
    faults: int = 0


class _DirectionState:
    __slots__ = (
        "cfg",
        "name",
        "latency",
        "bandwidth",
        "slowdown",
        "other",
        "queue",
        "active",
        "phase",
        "completion",
        "last_update",
        "rate",
        "stats",
        "begin_flow_cb",
        "complete_cb",
        "m_transfers",
        "m_bytes",
        "m_faults",
        "m_queue_wait",
    )

    def __init__(self, cfg: LinkDirectionConfig, name: str) -> None:
        self.cfg = cfg
        self.name = name
        # Scalar copies of the config, read on every event.
        self.latency = cfg.latency
        self.bandwidth = cfg.bandwidth
        self.slowdown = cfg.bid_slowdown
        self.other: "_DirectionState" = self  # rebound by DuplexLink
        self.queue: Deque[_Job] = deque()
        self.active: Optional[_Job] = None
        self.phase = _IDLE
        self.completion: Optional[ScheduledEvent] = None
        self.last_update = 0.0
        self.rate = 0.0
        self.stats = DirectionStats()
        # Bound per-direction callbacks (one allocation per link, not
        # one per event) and prefetched metric handles (None = off).
        self.begin_flow_cb: Callable[[], None] = lambda: None
        self.complete_cb: Callable[[], None] = lambda: None
        self.m_transfers = None
        self.m_bytes = None
        self.m_faults = None
        self.m_queue_wait = None


class DuplexLink:
    """The host<->device interconnect: two contending copy engines."""

    def __init__(
        self,
        sim: Simulator,
        h2d: LinkDirectionConfig,
        d2h: LinkDirectionConfig,
        noise: Optional[NoiseModel] = None,
        trace=None,
        faults: Optional[FaultInjector] = None,
        metrics=None,
    ) -> None:
        self._sim = sim
        self._h2d = _DirectionState(h2d, Direction.H2D.value)
        self._d2h = _DirectionState(d2h, Direction.D2H.value)
        self._h2d.other = self._d2h
        self._d2h.other = self._h2d
        self._dirs: Dict[Direction, _DirectionState] = {
            Direction.H2D: self._h2d,
            Direction.D2H: self._d2h,
        }
        self._noise = noise
        self._trace = trace
        self._faults = faults
        #: duck-typed MetricsRegistry (repro.obs.metrics); None = off
        self._metrics = metrics
        for st in (self._h2d, self._d2h):
            st.begin_flow_cb = partial(self._begin_flow, st)
            st.complete_cb = partial(self._complete, st)
            if metrics is not None:
                prefix = f"sim.{st.name}"
                st.m_transfers = metrics.counter(f"{prefix}.transfers")
                st.m_bytes = metrics.counter(f"{prefix}.bytes")
                st.m_faults = metrics.counter(f"{prefix}.faults")
                st.m_queue_wait = metrics.histogram(f"{prefix}.queue_wait")

    def config(self, direction: Direction) -> LinkDirectionConfig:
        return self._dirs[direction].cfg

    def stats(self, direction: Direction) -> DirectionStats:
        return self._dirs[direction].stats

    def queue_depth(self, direction: Direction) -> int:
        st = self._dirs[direction]
        return len(st.queue) + (1 if st.active is not None else 0)

    def is_flowing(self, direction: Direction) -> bool:
        return self._dirs[direction].phase == _FLOW

    def submit(
        self,
        direction: Direction,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        tag: str = "",
        on_fault: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a transfer of ``nbytes`` in ``direction``.

        ``on_complete`` fires at the virtual time the last byte lands.
        When a fault injector is attached the transfer may instead fail
        (CRC-style: it occupies the link for its full duration, then
        ``on_fault`` fires and ``on_complete`` does not), and may flow
        at collapsed bandwidth.
        """
        if nbytes < 0:
            raise InvalidTransferError(f"negative transfer size: {nbytes}")
        scale = 1.0
        if self._noise is not None:
            scale = self._noise.rate_factor()
        job = _Job(nbytes, on_complete, tag, scale)
        if self._faults is not None:
            outcome = self._faults.transfer_outcome(direction.value)
            job.fail = outcome.fail
            job.rate_scale *= outcome.rate_factor
            job.on_fault = on_fault
        job.submit_time = self._sim.now
        st = self._h2d if direction is Direction.H2D else self._d2h
        st.queue.append(job)
        if st.active is None:
            self._try_start(st)

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _try_start(self, st: _DirectionState) -> None:
        if st.active is not None or not st.queue:
            return
        job = st.queue.popleft()
        st.active = job
        st.phase = _LATENCY
        job.start_time = self._sim.now
        latency = st.latency
        if self._noise is not None:
            latency *= self._noise.latency_factor()
        st.completion = self._sim.schedule(latency, st.begin_flow_cb)

    def _current_rate(self, st: _DirectionState) -> float:
        """Byte rate for the direction given both directions' phases."""
        rate = st.bandwidth
        if st.other.phase == _FLOW:
            rate /= st.slowdown
        return rate * st.active.rate_scale

    def _begin_flow(self, st: _DirectionState) -> None:
        if st.active is None:
            raise SimulationError("flow began with no active transfer")
        st.phase = _FLOW
        st.last_update = self._sim.now
        if st.active.remaining <= 0.0:
            # Zero-byte transfer: latency only.
            self._complete(st)
            return
        self._reschedule(st)
        # The opposite direction just gained a contender: slow it down.
        self._replan(st.other)

    def _reschedule(self, st: _DirectionState) -> None:
        """(Re)compute the completion event from current remaining bytes."""
        if st.completion is not None:
            st.completion.cancelled = True
        rate = self._current_rate(st)
        st.rate = rate
        st.completion = self._sim.schedule(
            st.active.remaining / rate, st.complete_cb
        )

    def _accrue(self, st: _DirectionState, elapsed: float) -> None:
        """Account flow time (and contended flow time) for a span during
        which the contention state was constant.

        Whether the span was contended is derived from the rate in force
        during the span (``st.rate``), which encodes the old contention
        state even when this is called mid-transition.
        """
        if elapsed <= 0:
            return
        stats = st.stats
        stats.flow_time += elapsed
        uncontended = st.bandwidth * st.active.rate_scale
        if st.rate < uncontended * (1.0 - 1e-12):
            stats.bid_overlap_time += elapsed

    def _replan(self, st: _DirectionState) -> None:
        """Integrate progress and re-plan after a contention change."""
        if st.phase != _FLOW or st.active is None:
            return
        now = self._sim.now
        elapsed = now - st.last_update
        if elapsed > 0:
            done = elapsed * st.rate
            st.active.remaining = max(0.0, st.active.remaining - done)
            self._accrue(st, elapsed)
        st.last_update = now
        self._reschedule(st)

    def _complete(self, st: _DirectionState) -> None:
        job = st.active
        if job is None:
            raise SimulationError("completion fired with no active transfer")
        now = self._sim.now
        if st.phase == _FLOW:
            self._accrue(st, now - st.last_update)
        job.remaining = 0.0
        st.phase = _IDLE
        st.active = None
        st.completion = None
        stats = st.stats
        stats.transfers += 1
        stats.bytes_moved += job.nbytes
        stats.busy_time += now - job.start_time
        if job.fail:
            stats.faults += 1
        if st.m_transfers is not None:
            st.m_transfers.inc()
            st.m_bytes.inc(job.nbytes)
            if job.fail:
                st.m_faults.inc()
            st.m_queue_wait.observe(job.start_time - job.submit_time)
        if self._trace is not None:
            self._trace.record(
                engine=st.name,
                tag=job.tag + ("!fault" if job.fail else ""),
                start=job.start_time,
                end=now,
                nbytes=job.nbytes,
            )
        # The opposite direction lost its contender: speed it up.
        self._replan(st.other)
        if job.fail:
            if job.on_fault is not None:
                job.on_fault()
        elif job.on_complete is not None:
            job.on_complete()
        self._try_start(st)
