"""Duplex host-device link with bidirectional contention.

Models the PCIe behaviour the CoCoPeLia paper's BTS model is about:

* separate h2d and d2h copy engines, each processing one transfer at a
  time in FIFO order;
* a per-transfer fixed latency (setup) phase followed by a byte-flow
  phase at the direction's bandwidth;
* an *asymmetric bidirectional slowdown*: while both directions are in
  their byte-flow phase simultaneously, each direction's rate drops by
  its own slowdown factor (d2h is typically hurt more, per the paper).

The byte-flow phase is a fluid model: when the opposite direction starts
or stops flowing, the in-flight transfer is re-planned — bytes done so
far are integrated at the old rate and the completion event is
rescheduled at the new rate.  This is what produces the partial-overlap
behaviour of the paper's Eq. 3 as *ground truth*.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from ..errors import InvalidTransferError, SimulationError
from .engine import ScheduledEvent, Simulator
from .faults import FaultInjector
from .noise import NoiseModel


class Direction(enum.Enum):
    """Transfer direction over the duplex link."""

    H2D = "h2d"
    D2H = "d2h"

    @property
    def opposite(self) -> "Direction":
        return Direction.D2H if self is Direction.H2D else Direction.H2D


@dataclass(frozen=True)
class LinkDirectionConfig:
    """Ground-truth parameters for one link direction.

    latency
        Per-transfer setup time in seconds (the paper's ``t_l``).
    bandwidth
        Unidirectional byte rate in bytes/second (``1/t_b``).
    bid_slowdown
        Factor (>= 1) by which this direction slows while the opposite
        direction is also flowing (the paper's ``sl``).
    """

    latency: float
    bandwidth: float
    bid_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise InvalidTransferError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise InvalidTransferError(f"non-positive bandwidth: {self.bandwidth}")
        if self.bid_slowdown < 1.0:
            raise InvalidTransferError(
                f"bidirectional slowdown must be >= 1, got {self.bid_slowdown}"
            )


class _Phase(enum.Enum):
    IDLE = 0
    LATENCY = 1
    FLOW = 2


class _Job:
    """One queued or in-flight transfer."""

    __slots__ = (
        "nbytes",
        "on_complete",
        "on_fault",
        "tag",
        "remaining",
        "rate_scale",
        "fail",
        "submit_time",
        "start_time",
    )

    def __init__(
        self,
        nbytes: int,
        on_complete: Optional[Callable[[], None]],
        tag: str,
        rate_scale: float,
    ) -> None:
        self.nbytes = nbytes
        self.on_complete = on_complete
        #: fires instead of ``on_complete`` when the transfer fails
        self.on_fault: Optional[Callable[[], None]] = None
        self.tag = tag
        self.remaining = float(nbytes)
        #: multiplicative noise on this job's effective bandwidth
        self.rate_scale = rate_scale
        #: injected transient failure: occupies the link, then fails
        self.fail = False
        self.submit_time: float = 0.0
        self.start_time: float = 0.0


@dataclass
class DirectionStats:
    """Aggregate counters for one direction, for tests and reports."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_time: float = 0.0
    flow_time: float = 0.0
    bid_overlap_time: float = 0.0
    #: injected transient failures (each occupied the link fully)
    faults: int = 0


class _DirectionState:
    __slots__ = (
        "cfg",
        "queue",
        "active",
        "phase",
        "completion",
        "last_update",
        "rate",
        "stats",
    )

    def __init__(self, cfg: LinkDirectionConfig) -> None:
        self.cfg = cfg
        self.queue: Deque[_Job] = deque()
        self.active: Optional[_Job] = None
        self.phase = _Phase.IDLE
        self.completion: Optional[ScheduledEvent] = None
        self.last_update = 0.0
        self.rate = 0.0
        self.stats = DirectionStats()


class DuplexLink:
    """The host<->device interconnect: two contending copy engines."""

    def __init__(
        self,
        sim: Simulator,
        h2d: LinkDirectionConfig,
        d2h: LinkDirectionConfig,
        noise: Optional[NoiseModel] = None,
        trace=None,
        faults: Optional[FaultInjector] = None,
        metrics=None,
    ) -> None:
        self._sim = sim
        self._dirs: Dict[Direction, _DirectionState] = {
            Direction.H2D: _DirectionState(h2d),
            Direction.D2H: _DirectionState(d2h),
        }
        self._noise = noise
        self._trace = trace
        self._faults = faults
        #: duck-typed MetricsRegistry (repro.obs.metrics); None = off
        self._metrics = metrics

    def config(self, direction: Direction) -> LinkDirectionConfig:
        return self._dirs[direction].cfg

    def stats(self, direction: Direction) -> DirectionStats:
        return self._dirs[direction].stats

    def queue_depth(self, direction: Direction) -> int:
        st = self._dirs[direction]
        return len(st.queue) + (1 if st.active is not None else 0)

    def is_flowing(self, direction: Direction) -> bool:
        return self._dirs[direction].phase is _Phase.FLOW

    def submit(
        self,
        direction: Direction,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        tag: str = "",
        on_fault: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a transfer of ``nbytes`` in ``direction``.

        ``on_complete`` fires at the virtual time the last byte lands.
        When a fault injector is attached the transfer may instead fail
        (CRC-style: it occupies the link for its full duration, then
        ``on_fault`` fires and ``on_complete`` does not), and may flow
        at collapsed bandwidth.
        """
        if nbytes < 0:
            raise InvalidTransferError(f"negative transfer size: {nbytes}")
        scale = 1.0
        if self._noise is not None:
            scale = self._noise.rate_factor()
        job = _Job(nbytes, on_complete, tag, scale)
        if self._faults is not None:
            outcome = self._faults.transfer_outcome(direction.value)
            job.fail = outcome.fail
            job.rate_scale *= outcome.rate_factor
            job.on_fault = on_fault
        job.submit_time = self._sim.now
        self._dirs[direction].queue.append(job)
        self._try_start(direction)

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _try_start(self, direction: Direction) -> None:
        st = self._dirs[direction]
        if st.active is not None or not st.queue:
            return
        job = st.queue.popleft()
        st.active = job
        st.phase = _Phase.LATENCY
        job.start_time = self._sim.now
        latency = st.cfg.latency
        if self._noise is not None:
            latency *= self._noise.latency_factor()
        st.completion = self._sim.schedule(
            latency, lambda d=direction: self._begin_flow(d)
        )

    def _current_rate(self, direction: Direction) -> float:
        """Byte rate for ``direction`` given both directions' phases."""
        st = self._dirs[direction]
        other = self._dirs[direction.opposite]
        rate = st.cfg.bandwidth
        if other.phase is _Phase.FLOW:
            rate /= st.cfg.bid_slowdown
        assert st.active is not None
        return rate * st.active.rate_scale

    def _begin_flow(self, direction: Direction) -> None:
        st = self._dirs[direction]
        if st.active is None:
            raise SimulationError("flow began with no active transfer")
        st.phase = _Phase.FLOW
        st.last_update = self._sim.now
        if st.active.remaining <= 0.0:
            # Zero-byte transfer: latency only.
            self._complete(direction)
            return
        self._reschedule(direction)
        # The opposite direction just gained a contender: slow it down.
        self._replan(direction.opposite)

    def _reschedule(self, direction: Direction) -> None:
        """(Re)compute the completion event from current remaining bytes."""
        st = self._dirs[direction]
        assert st.active is not None
        if st.completion is not None:
            st.completion.cancel()
        st.rate = self._current_rate(direction)
        eta = st.active.remaining / st.rate
        st.completion = self._sim.schedule(
            eta, lambda d=direction: self._complete(d)
        )

    def _accrue(self, direction: Direction, elapsed: float) -> None:
        """Account flow time (and contended flow time) for a span during
        which the contention state was constant.

        Whether the span was contended is derived from the rate in force
        during the span (``st.rate``), which encodes the old contention
        state even when this is called mid-transition.
        """
        if elapsed <= 0:
            return
        st = self._dirs[direction]
        st.stats.flow_time += elapsed
        assert st.active is not None
        uncontended = st.cfg.bandwidth * st.active.rate_scale
        if st.rate < uncontended * (1.0 - 1e-12):
            st.stats.bid_overlap_time += elapsed

    def _replan(self, direction: Direction) -> None:
        """Integrate progress and re-plan after a contention change."""
        st = self._dirs[direction]
        if st.phase is not _Phase.FLOW or st.active is None:
            return
        now = self._sim.now
        elapsed = now - st.last_update
        if elapsed > 0:
            done = elapsed * st.rate
            st.active.remaining = max(0.0, st.active.remaining - done)
            self._accrue(direction, elapsed)
        st.last_update = now
        self._reschedule(direction)

    def _complete(self, direction: Direction) -> None:
        st = self._dirs[direction]
        job = st.active
        if job is None:
            raise SimulationError("completion fired with no active transfer")
        now = self._sim.now
        if st.phase is _Phase.FLOW:
            self._accrue(direction, now - st.last_update)
        job.remaining = 0.0
        st.phase = _Phase.IDLE
        st.active = None
        st.completion = None
        st.stats.transfers += 1
        st.stats.bytes_moved += job.nbytes
        st.stats.busy_time += now - job.start_time
        if job.fail:
            st.stats.faults += 1
        if self._metrics is not None:
            prefix = f"sim.{direction.value}"
            self._metrics.counter(f"{prefix}.transfers").inc()
            self._metrics.counter(f"{prefix}.bytes").inc(job.nbytes)
            if job.fail:
                self._metrics.counter(f"{prefix}.faults").inc()
            self._metrics.histogram(f"{prefix}.queue_wait").observe(
                job.start_time - job.submit_time
            )
        if self._trace is not None:
            self._trace.record(
                engine=direction.value,
                tag=job.tag + ("!fault" if job.fail else ""),
                start=job.start_time,
                end=now,
                nbytes=job.nbytes,
            )
        # The opposite direction lost its contender: speed it up.
        self._replan(direction.opposite)
        if job.fail:
            if job.on_fault is not None:
                job.on_fault()
        elif job.on_complete is not None:
            job.on_complete()
        self._try_start(direction)
