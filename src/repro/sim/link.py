"""Duplex host-device link with bidirectional contention.

Models the PCIe behaviour the CoCoPeLia paper's BTS model is about:

* separate h2d and d2h copy engines, each processing one transfer at a
  time in FIFO order;
* a per-transfer fixed latency (setup) phase followed by a byte-flow
  phase at the direction's bandwidth;
* an *asymmetric bidirectional slowdown*: while both directions are in
  their byte-flow phase simultaneously, each direction's rate drops by
  its own slowdown factor (d2h is typically hurt more, per the paper).

The byte-flow phase is a fluid model: when the opposite direction starts
or stops flowing, the in-flight transfer is re-planned — bytes done so
far are integrated at the old rate and the completion event is
rescheduled at the new rate.  This is what produces the partial-overlap
behaviour of the paper's Eq. 3 as *ground truth*.

Hot-path notes: this module fires a handful of callbacks per simulated
transfer, so the inner machinery avoids per-event allocations and
per-call lookups — direction state is held in plain slotted objects
linked via ``other`` (no enum-keyed dict on the transfer path), the
latency/flow/completion callbacks are bound once per direction instead
of a fresh lambda per event, and metric handles are resolved at
construction.  The event timing and firing order are identical to the
original implementation.

Fluid regime: on a ``Simulator(mode="fluid")`` with no fault injector,
a direction whose backlog reaches ``FLUID_MIN_WINDOW`` large transfers
collapses the whole run into a :class:`~repro.sim.fluid.FluidFlow` —
analytic completion times, zero per-chunk events — and bails back to
exact DES whenever the opposite direction's contention state changes
(see ``fluid.py`` for the error model).  Exact mode never takes any of
these branches.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, Dict, Optional, Tuple

from ..errors import InvalidTransferError, SimulationError
from .engine import ScheduledEvent, Simulator
from .faults import FaultInjector
from .fluid import FLUID_MIN_WINDOW, FLUID_MIN_FLOW_RATIO, FluidFlow, FluidStats
from .noise import NoiseModel


class Direction(enum.Enum):
    """Transfer direction over the duplex link."""

    H2D = "h2d"
    D2H = "d2h"

    @property
    def opposite(self) -> "Direction":
        return Direction.D2H if self is Direction.H2D else Direction.H2D


@dataclass(frozen=True)
class LinkDirectionConfig:
    """Ground-truth parameters for one link direction.

    latency
        Per-transfer setup time in seconds (the paper's ``t_l``).
    bandwidth
        Unidirectional byte rate in bytes/second (``1/t_b``).
    bid_slowdown
        Factor (>= 1) by which this direction slows while the opposite
        direction is also flowing (the paper's ``sl``).
    """

    latency: float
    bandwidth: float
    bid_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise InvalidTransferError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise InvalidTransferError(f"non-positive bandwidth: {self.bandwidth}")
        if self.bid_slowdown < 1.0:
            raise InvalidTransferError(
                f"bidirectional slowdown must be >= 1, got {self.bid_slowdown}"
            )


# Flow phases as plain ints: module constants are cheaper to read and
# compare than enum members on the per-event path.
_IDLE = 0
_LATENCY = 1
_FLOW = 2


class _Job:
    """One queued or in-flight transfer."""

    __slots__ = (
        "nbytes",
        "on_complete",
        "on_fault",
        "tag",
        "remaining",
        "rate_scale",
        "fail",
        "submit_time",
        "start_time",
    )

    def __init__(
        self,
        nbytes: int,
        on_complete: Optional[Callable[[], None]],
        tag: str,
        rate_scale: float,
    ) -> None:
        self.nbytes = nbytes
        self.on_complete = on_complete
        #: fires instead of ``on_complete`` when the transfer fails
        self.on_fault: Optional[Callable[[], None]] = None
        self.tag = tag
        self.remaining = float(nbytes)
        #: multiplicative noise on this job's effective bandwidth
        self.rate_scale = rate_scale
        #: injected transient failure: occupies the link, then fails
        self.fail = False
        self.submit_time: float = 0.0
        self.start_time: float = 0.0


@dataclass
class DirectionStats:
    """Aggregate counters for one direction, for tests and reports."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_time: float = 0.0
    flow_time: float = 0.0
    bid_overlap_time: float = 0.0
    #: injected transient failures (each occupied the link fully)
    faults: int = 0


class _DirectionState:
    __slots__ = (
        "cfg",
        "name",
        "latency",
        "bandwidth",
        "slowdown",
        "other",
        "queue",
        "active",
        "phase",
        "completion",
        "last_update",
        "rate",
        "stats",
        "flow",
        "fluid_min_bytes",
        "begin_flow_cb",
        "complete_cb",
        "m_transfers",
        "m_bytes",
        "m_faults",
        "m_queue_wait",
    )

    def __init__(self, cfg: LinkDirectionConfig, name: str) -> None:
        self.cfg = cfg
        self.name = name
        # Scalar copies of the config, read on every event.
        self.latency = cfg.latency
        self.bandwidth = cfg.bandwidth
        self.slowdown = cfg.bid_slowdown
        self.other: "_DirectionState" = self  # rebound by DuplexLink
        self.queue: Deque[_Job] = deque()
        self.active: Optional[_Job] = None
        self.phase = _IDLE
        self.completion: Optional[ScheduledEvent] = None
        self.last_update = 0.0
        self.rate = 0.0
        self.stats = DirectionStats()
        #: open analytic window (fluid mode only)
        self.flow: Optional[FluidFlow] = None
        #: smallest transfer the fluid regime will collapse
        self.fluid_min_bytes = 0.0
        # Bound per-direction callbacks (one allocation per link, not
        # one per event) and prefetched metric handles (None = off).
        self.begin_flow_cb: Callable[[], None] = lambda: None
        self.complete_cb: Callable[[], None] = lambda: None
        self.m_transfers = None
        self.m_bytes = None
        self.m_faults = None
        self.m_queue_wait = None


class DuplexLink:
    """The host<->device interconnect: two contending copy engines."""

    def __init__(
        self,
        sim: Simulator,
        h2d: LinkDirectionConfig,
        d2h: LinkDirectionConfig,
        noise: Optional[NoiseModel] = None,
        trace=None,
        faults: Optional[FaultInjector] = None,
        metrics=None,
        names: Optional[Tuple[str, str]] = None,
    ) -> None:
        self._sim = sim
        #: Engine names used for trace spans and metric prefixes; the
        #: inter-GPU interconnect overrides them (e.g. ``peer0>1``) so
        #: peer links are distinguishable from the PCIe ``h2d``/``d2h``
        #: engines in merged timelines.  Timing is name-independent.
        h2d_name, d2h_name = (names if names is not None
                              else (Direction.H2D.value, Direction.D2H.value))
        self._h2d = _DirectionState(h2d, h2d_name)
        self._d2h = _DirectionState(d2h, d2h_name)
        self._h2d.other = self._d2h
        self._d2h.other = self._h2d
        self._dirs: Dict[Direction, _DirectionState] = {
            Direction.H2D: self._h2d,
            Direction.D2H: self._d2h,
        }
        self._noise = noise
        self._trace = trace
        self._faults = faults
        #: duck-typed MetricsRegistry (repro.obs.metrics); None = off
        self._metrics = metrics
        #: hybrid fluid-flow collapse: only on fluid-mode simulators,
        #: and structurally never with a fault injector attached (a
        #: mid-window fault could not be replayed exactly)
        self._fluid_ok = faults is None and getattr(sim, "mode", "exact") == "fluid"
        self.fluid_stats = FluidStats()
        max_latency = max(self._h2d.latency, self._d2h.latency)
        for st in (self._h2d, self._d2h):
            st.fluid_min_bytes = FLUID_MIN_FLOW_RATIO * max_latency * st.bandwidth
        for st in (self._h2d, self._d2h):
            st.begin_flow_cb = partial(self._begin_flow, st)
            st.complete_cb = partial(self._complete, st)
            if metrics is not None:
                prefix = f"sim.{st.name}"
                st.m_transfers = metrics.counter(f"{prefix}.transfers")
                st.m_bytes = metrics.counter(f"{prefix}.bytes")
                st.m_faults = metrics.counter(f"{prefix}.faults")
                st.m_queue_wait = metrics.histogram(f"{prefix}.queue_wait")

    def config(self, direction: Direction) -> LinkDirectionConfig:
        return self._dirs[direction].cfg

    def stats(self, direction: Direction) -> DirectionStats:
        return self._dirs[direction].stats

    def queue_depth(self, direction: Direction) -> int:
        st = self._dirs[direction]
        depth = len(st.queue) + (1 if st.active is not None else 0)
        if st.flow is not None:
            depth += st.flow.pending
        return depth

    def is_flowing(self, direction: Direction) -> bool:
        return self._dirs[direction].phase == _FLOW

    def submit(
        self,
        direction: Direction,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        tag: str = "",
        on_fault: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a transfer of ``nbytes`` in ``direction``.

        ``on_complete`` fires at the virtual time the last byte lands.
        When a fault injector is attached the transfer may instead fail
        (CRC-style: it occupies the link for its full duration, then
        ``on_fault`` fires and ``on_complete`` does not), and may flow
        at collapsed bandwidth.
        """
        if nbytes < 0:
            raise InvalidTransferError(f"negative transfer size: {nbytes}")
        scale = 1.0
        if self._noise is not None:
            scale = self._noise.rate_factor()
        job = _Job(nbytes, on_complete, tag, scale)
        if self._faults is not None:
            outcome = self._faults.transfer_outcome(direction.value)
            job.fail = outcome.fail
            job.rate_scale *= outcome.rate_factor
            job.on_fault = on_fault
        job.submit_time = self._sim.now
        st = self._h2d if direction is Direction.H2D else self._d2h
        flow = st.flow
        if flow is not None:
            # Mid-window: extend the analytic window when FIFO order
            # allows (nothing queued behind it and the job is large
            # enough to collapse), else queue for after the window.
            if not st.queue and job.nbytes >= st.fluid_min_bytes:
                latency = st.latency
                if self._noise is not None:
                    latency *= self._noise.latency_factor()
                flow.extend(job, latency, flow.rate_base * job.rate_scale)
                stats = self.fluid_stats
                stats.extensions += 1
                stats.jobs_collapsed += 1
            else:
                st.queue.append(job)
            return
        st.queue.append(job)
        if st.active is None:
            self._try_start(st)

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _try_start(self, st: _DirectionState) -> None:
        if st.active is not None or not st.queue:
            return
        if (
            self._fluid_ok
            and st.flow is None
            and len(st.queue) >= FLUID_MIN_WINDOW
            and self._open_flow(st)
        ):
            return
        job = st.queue.popleft()
        st.active = job
        st.phase = _LATENCY
        job.start_time = self._sim.now
        latency = st.latency
        if self._noise is not None:
            latency *= self._noise.latency_factor()
        st.completion = self._sim.schedule(latency, st.begin_flow_cb)

    def _current_rate(self, st: _DirectionState) -> float:
        """Byte rate for the direction given both directions' phases."""
        rate = st.bandwidth
        if st.other.phase == _FLOW:
            rate /= st.slowdown
        return rate * st.active.rate_scale

    def _begin_flow(self, st: _DirectionState) -> None:
        if st.active is None:
            raise SimulationError("flow began with no active transfer")
        st.phase = _FLOW
        st.last_update = self._sim.now
        other = st.other
        if other.flow is not None and not other.flow.contended:
            # This direction is about to contend; the neighbour's
            # analytic window assumed it stayed idle.
            self._fluid_bail(other, "contention")
        if st.active.remaining <= 0.0:
            # Zero-byte transfer: latency only.
            self._complete(st)
            return
        self._reschedule(st)
        # The opposite direction just gained a contender: slow it down.
        self._replan(other)

    def _reschedule(self, st: _DirectionState) -> None:
        """(Re)compute the completion event from current remaining bytes."""
        if st.completion is not None:
            st.completion.cancelled = True
        rate = self._current_rate(st)
        st.rate = rate
        st.completion = self._sim.schedule(
            st.active.remaining / rate, st.complete_cb
        )

    def _accrue(self, st: _DirectionState, elapsed: float) -> None:
        """Account flow time (and contended flow time) for a span during
        which the contention state was constant.

        Whether the span was contended is derived from the rate in force
        during the span (``st.rate``), which encodes the old contention
        state even when this is called mid-transition.
        """
        if elapsed <= 0:
            return
        stats = st.stats
        stats.flow_time += elapsed
        uncontended = st.bandwidth * st.active.rate_scale
        if st.rate < uncontended * (1.0 - 1e-12):
            stats.bid_overlap_time += elapsed

    def _replan(self, st: _DirectionState) -> None:
        """Integrate progress and re-plan after a contention change."""
        if st.phase != _FLOW or st.active is None:
            return
        now = self._sim.now
        elapsed = now - st.last_update
        if elapsed > 0:
            done = elapsed * st.rate
            st.active.remaining = max(0.0, st.active.remaining - done)
            self._accrue(st, elapsed)
        st.last_update = now
        self._reschedule(st)

    def _complete(self, st: _DirectionState) -> None:
        job = st.active
        if job is None:
            raise SimulationError("completion fired with no active transfer")
        now = self._sim.now
        if st.phase == _FLOW:
            self._accrue(st, now - st.last_update)
        job.remaining = 0.0
        st.phase = _IDLE
        st.active = None
        st.completion = None
        stats = st.stats
        stats.transfers += 1
        stats.bytes_moved += job.nbytes
        stats.busy_time += now - job.start_time
        if job.fail:
            stats.faults += 1
        if st.m_transfers is not None:
            st.m_transfers.inc()
            st.m_bytes.inc(job.nbytes)
            if job.fail:
                st.m_faults.inc()
            st.m_queue_wait.observe(job.start_time - job.submit_time)
        if self._trace is not None:
            self._trace.record(
                engine=st.name,
                tag=job.tag + ("!fault" if job.fail else ""),
                start=job.start_time,
                end=now,
                nbytes=job.nbytes,
            )
        # The opposite direction lost its contender: speed it up.
        other = st.other
        if other.flow is not None and other.flow.contended and not st.queue:
            # This direction is going durably idle; the neighbour's
            # window priced in our contention.  (A non-empty queue
            # means _try_start below restarts us immediately — the
            # momentary gap is exactly what the window approximates.)
            self._fluid_bail(other, "contention")
        self._replan(other)
        if job.fail:
            if job.on_fault is not None:
                job.on_fault()
        elif job.on_complete is not None:
            job.on_complete()
        self._try_start(st)

    # ------------------------------------------------------------------
    # fluid regime (Simulator(mode="fluid") only; see sim/fluid.py)
    # ------------------------------------------------------------------

    def _open_flow(self, st: _DirectionState) -> bool:
        """Collapse the eligible FIFO prefix of the backlog, if deep
        enough, into an analytic window.  Returns True on success."""
        floor = st.fluid_min_bytes
        k = 0
        pure = True
        for job in st.queue:
            if job.nbytes < floor:
                break
            if job.on_complete is not None:
                pure = False
            k += 1
        if k < FLUID_MIN_WINDOW:
            return False
        other = st.other
        if other.flow is not None and not other.flow.contended:
            # The neighbour's window assumed this direction stays idle.
            self._fluid_bail(other, "contention")
        queue = st.queue
        if k == len(queue):
            jobs = list(queue)
            queue.clear()
        else:
            jobs = [queue.popleft() for _ in range(k)]
        contended = other.active is not None or other.flow is not None
        rate_base = st.bandwidth / st.slowdown if contended else st.bandwidth
        noise = self._noise
        if noise is not None:
            latencies = [st.latency * noise.latency_factor() for _ in jobs]
            rates = None  # per-job rate_scale varies; let open() derive
        else:
            latencies = [st.latency] * k
            rates = [rate_base] * k
        flow = FluidFlow.open(
            self._sim.now, jobs, latencies, rate_base, contended,
            partial(self._flow_fire, st),
            rates=rates, pure=pure,
        )
        flow.drain = partial(self._flow_drain, st)
        st.flow = flow
        st.phase = _FLOW
        st.last_update = self._sim.now
        self._sim.register_flow(flow)
        stats = self.fluid_stats
        stats.windows += 1
        stats.jobs_collapsed += k
        # The opposite direction just gained a (fluid) contender.
        self._replan(other)
        return True

    def _flow_fire(self, st: _DirectionState) -> None:
        """Fire the next collapsed completion.  The engine's fluid run
        loop calls this with the clock already at the analytic time."""
        flow = st.flow
        # FluidFlow.take_next, inlined: this is the one per-transfer
        # call in a collapsed window, and the indirection costs more
        # than the bookkeeping.  The pointer moves before the callback
        # so a re-entrant bail never replays the fired job.
        i = flow.idx
        flow.idx = i + 1
        ends = flow.ends
        flow.next_time = ends[i + 1] if i + 1 < len(ends) else None
        job = flow.jobs[i]
        start = flow.starts[i]
        end = ends[i]
        nbytes = job.nbytes
        # Per-fire stats use the same operand floats and accumulation
        # order as exact mode, so an uncontended window leaves the
        # counters bit-identical to exact DES.
        stats = st.stats
        stats.transfers += 1
        stats.bytes_moved += nbytes
        stats.busy_time += end - start
        flow_time = end - flow.begins[i]
        stats.flow_time += flow_time
        if flow.contended:
            stats.bid_overlap_time += flow_time
        if st.m_transfers is not None:
            st.m_transfers.inc()
            st.m_bytes.inc(nbytes)
            st.m_queue_wait.observe(start - job.submit_time)
        cb = job.on_complete
        if cb is not None:
            cb()
        # The callback may have extended the window or bailed it (a
        # re-entrant submit to the opposite direction); only close if
        # this window is still ours and drained.  next_time is None
        # exactly when every collapsed job has fired (an extend would
        # have refreshed it).
        if st.flow is flow and flow.next_time is None:
            self._close_flow(st)

    def _flow_drain(self, st: _DirectionState, limit: float) -> int:
        """Bulk-fire every collapsed completion strictly before
        ``limit``.  Returns the number fired.

        Only called by the run loop while the window is *pure* (no
        un-fired job carries a completion callback), so each fire is
        nothing but this direction's bookkeeping: no re-entrant
        submits, extends, or bails can occur, and the per-fire trip
        through the run loop would be wasted motion.  The limit is the
        next side-effectful instant (a discrete event or some window's
        last completion, whose close can bail a neighbour), so every
        cross-direction interaction still happens at its exact time.

        The accumulation below performs the same float additions in
        the same order as per-fire ``_flow_fire`` — running them in
        locals and writing back changes nothing bitwise.
        """
        flow = st.flow
        jobs = flow.jobs
        starts = flow.starts
        begins = flow.begins
        ends = flow.ends
        contended = flow.contended
        m = st.m_transfers
        stats = st.stats
        transfers = stats.transfers
        bytes_moved = stats.bytes_moved
        busy_time = stats.busy_time
        flow_time = stats.flow_time
        overlap_time = stats.bid_overlap_time
        i = flow.idx
        first = i
        n = len(ends)
        while i < n and ends[i] < limit:
            end = ends[i]
            job = jobs[i]
            nbytes = job.nbytes
            transfers += 1
            bytes_moved += nbytes
            busy_time += end - starts[i]
            ft = end - begins[i]
            flow_time += ft
            if contended:
                overlap_time += ft
            if m is not None:
                m.inc()
                st.m_bytes.inc(nbytes)
                st.m_queue_wait.observe(starts[i] - job.submit_time)
            i += 1
        stats.transfers = transfers
        stats.bytes_moved = bytes_moved
        stats.busy_time = busy_time
        stats.flow_time = flow_time
        stats.bid_overlap_time = overlap_time
        flow.idx = i
        flow.next_time = ends[i] if i < n else None
        return i - first

    def _close_flow(self, st: _DirectionState) -> None:
        """Normal end of a drained window: back to exact machinery."""
        flow = st.flow
        st.flow = None
        self._sim.unregister_flow(flow)
        self._flush_flow(st, flow)
        st.phase = _IDLE
        other = st.other
        if other.flow is not None and other.flow.contended and not st.queue:
            self._fluid_bail(other, "contention")
        self._replan(other)
        self._try_start(st)

    def _fluid_bail(self, st: _DirectionState, reason: str) -> None:
        """Abandon the analytic window: flush the fired prefix and
        reconstruct the exact DES state of the remainder."""
        flow = st.flow
        st.flow = None
        self._sim.unregister_flow(flow)
        self._flush_flow(st, flow)
        self.fluid_stats.record_bail(reason)
        state = flow.bail_state()
        queue = st.queue
        for job in reversed(state.requeue):
            queue.appendleft(job)
        job = state.active
        if job is None:
            # Bailed exactly at a window boundary: nothing in flight.
            st.phase = _IDLE
            self._try_start(st)
            return
        sim = self._sim
        now = sim.now
        st.active = job
        job.start_time = state.active_start
        if st.completion is not None:
            st.completion.cancelled = True
        if now < state.active_begin:
            # Still in the setup phase: re-issue the begin-flow event.
            st.phase = _LATENCY
            st.completion = sim.schedule_at(state.active_begin, st.begin_flow_cb)
            return
        # Mid-flow: integrate analytic progress at the window rate.
        rate = state.active_rate
        done = (now - state.active_begin) * rate
        job.remaining = max(0.0, float(job.nbytes) - done)
        st.phase = _FLOW
        st.last_update = now
        st.rate = rate
        st.completion = sim.schedule(job.remaining / rate, st.complete_cb)

    def _flush_flow(self, st: _DirectionState, flow: FluidFlow) -> None:
        """Record the collapsed trace span for a window's fired prefix.

        Per-transfer stats and metrics accrue at fire time (see
        ``_flow_fire``); only the synthetic trace marker is deferred to
        window close/bail.
        """
        if self._trace is None:
            return
        k = flow.idx
        if k == 0:
            return
        # One synthetic span per window; obs.verify treats "fluid:"
        # tags as collapsed markers (exempt from the per-transfer
        # completion-order invariant).  The fired byte total is summed
        # here — once per window — instead of per fire.
        self._trace.record(
            engine=st.name,
            tag=f"fluid:{st.name}#{k}",
            start=flow.t_open,
            end=flow.ends[k - 1],
            nbytes=sum(job.nbytes for job in flow.jobs[:k]),
        )
