"""Analytic fluid-flow windows for saturated link directions.

The duplex link's byte-flow phase is already a fluid model: while the
contention state is constant, a transfer progresses at a fixed rate and
its completion time is closed-form.  When a direction has a deep FIFO
backlog of large transfers, the per-chunk events (begin-flow,
completion, re-plan) carry no information — every chunk starts the
instant its predecessor finishes, at a rate known in advance.  A
:class:`FluidFlow` collapses such a run into one numpy cumulative sum:

    [t0, lat_0, flow_0, lat_1, flow_1, ...]  --cumsum-->  begins, ends

``np.cumsum`` accumulates left-to-right in float64, the same chain of
additions exact mode performs (end_i = start_i + lat_i + flow_i,
start_{i+1} = end_i), so an *uncontended* window reproduces exact
completion times bit-for-bit.  What the window approximates away is the
opposite direction's phase transitions while both directions stay busy:
the window pins its rate to the contention state at open time
(``contended``), ignoring the other side's brief latency-phase gaps.
Per chunk the error is at most lat/(lat + flow) of the slowdown effect,
which is why eligibility requires flow time >> latency (see
``FLUID_MIN_FLOW_RATIO``); the equivalence suite pins the end-to-end
makespan error under 0.5%.

Anything the window cannot describe — the opposite direction going
idle or busy (contention change), a fault injector, lifecycle events —
triggers a *bail*: the link flushes the fired prefix, reconstructs the
in-flight transfer's exact state from :meth:`FluidFlow.bail_state`, and
hands the remainder back to ordinary discrete events.  Fluid mode is
therefore opt-in (``Simulator(mode="fluid")``) and structurally
impossible with a fault injector attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

#: Minimum backlog depth before a window opens.  Below this the
#: per-window bookkeeping costs more than the events it saves.
FLUID_MIN_WINDOW = 4

#: A transfer is window-eligible only when its flow time is at least
#: this multiple of the link's setup latency; the ignored latency-phase
#: gaps are then < 1/ratio of the window, bounding the makespan error.
FLUID_MIN_FLOW_RATIO = 64.0


@dataclass
class FluidStats:
    """Aggregate fluid-regime counters, for tests and reports."""

    windows: int = 0
    jobs_collapsed: int = 0
    extensions: int = 0
    bails: int = 0
    bail_reasons: Dict[str, int] = field(default_factory=dict)

    def record_bail(self, reason: str) -> None:
        self.bails += 1
        self.bail_reasons[reason] = self.bail_reasons.get(reason, 0) + 1


@dataclass
class BailState:
    """Exact-engine reconstruction of a window interrupted mid-run."""

    #: jobs that never started, in FIFO order
    requeue: List[object]
    #: the job in flight at bail time (None when the window is drained)
    active: Optional[object]
    active_start: float
    #: when the active job's flow phase begins (may be in the future:
    #: the job is still in its setup-latency phase)
    active_begin: float
    active_rate: float


class FluidFlow:
    """One analytic window: a FIFO run of collapsed transfers.

    Registered with the simulator's fluid run loop, which reads
    :attr:`next_time` and calls :meth:`fire` with the clock already
    advanced to that analytic completion time.
    """

    __slots__ = (
        "fire",
        "drain",
        "contended",
        "rate_base",
        "jobs",
        "rates",
        "starts",
        "begins",
        "ends",
        "idx",
        "t_open",
        "next_time",
        "pure",
    )

    def __init__(
        self,
        fire_cb: Callable[[], None],
        rate_base: float,
        contended: bool,
    ) -> None:
        #: fired by the engine's fluid run loop with the clock already
        #: at :attr:`next_time`; a plain slot (not a method) so the
        #: per-completion call has no extra frame.
        self.fire = fire_cb
        #: bulk-fires every completion strictly before a time limit
        #: (``drain(limit) -> count``); bound by the owning link, used
        #: by the run loop only while :attr:`pure` holds.
        self.drain: Optional[Callable[[float], int]] = None
        #: direction bandwidth, slowdown-adjusted for the contention
        #: state frozen at open time
        self.rate_base = rate_base
        self.contended = contended
        self.jobs: List[object] = []
        self.rates: List[float] = []
        self.starts: List[float] = []
        self.begins: List[float] = []
        self.ends: List[float] = []
        self.idx = 0
        self.t_open = 0.0
        #: analytic time of the next collapsed completion (None when
        #: drained); kept as a maintained attribute — the run loop
        #: reads it every iteration, a property call would dominate
        self.next_time: Optional[float] = None
        #: True while no un-fired job carries a completion callback:
        #: firing is then pure per-direction bookkeeping and the run
        #: loop may bulk-drain instead of stepping per completion
        self.pure = True

    @classmethod
    def open(
        cls,
        t0: float,
        jobs: Sequence[object],
        latencies: Sequence[float],
        rate_base: float,
        contended: bool,
        fire_cb: Callable[["FluidFlow"], None],
        rates: Optional[List[float]] = None,
        pure: Optional[bool] = None,
    ) -> "FluidFlow":
        """Build a window over ``jobs`` starting at ``t0``.

        ``rates`` and ``pure`` are optional precomputed values: a
        caller that already scanned the jobs (the link's open path
        does, for eligibility) passes them to skip the extra O(k)
        passes here; when omitted they are derived from the jobs.
        """
        flow = cls(fire_cb, rate_base, contended)
        flow.t_open = t0
        k = len(jobs)
        if rates is None:
            rates = [rate_base * job.rate_scale for job in jobs]
        seq = np.empty(2 * k + 1, dtype=np.float64)
        seq[0] = t0
        seq[1::2] = latencies
        seq[2::2] = [job.remaining for job in jobs]
        # Elementwise IEEE division: bitwise the same quotients the
        # scalar per-job form produces.
        seq[2::2] /= rates
        cum = np.cumsum(seq)
        flow.jobs = list(jobs)
        flow.rates = rates
        flow.begins = cum[1::2].tolist()
        flow.ends = cum[2::2].tolist()
        flow.starts = [t0] + flow.ends[:-1]
        flow.next_time = flow.ends[0]
        if pure is None:
            pure = True
            for job in jobs:
                if job.on_complete is not None:
                    pure = False
                    break
        flow.pure = pure
        return flow

    def extend(self, job, latency: float, rate: float) -> None:
        """Append one more transfer back-to-back after the current tail."""
        start = self.ends[-1]
        begin = start + latency
        self.jobs.append(job)
        self.rates.append(rate)
        self.starts.append(start)
        self.begins.append(begin)
        self.ends.append(begin + job.remaining / rate)
        if job.on_complete is not None:
            self.pure = False
        if self.idx == len(self.jobs) - 1:
            # The tail had already fired (a completion callback is
            # extending the window re-entrantly): the appended job is
            # the next completion.
            self.next_time = self.ends[-1]

    # ------------------------------------------------------------------
    # simulator-facing protocol (``fire`` and ``next_time`` are slots)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Collapsed transfers not yet fired."""
        return len(self.jobs) - self.idx

    # ------------------------------------------------------------------
    # link-facing protocol
    # ------------------------------------------------------------------

    def take_next(self):
        """Advance past the next completion; returns
        ``(job, start, begin, end)`` for the caller's bookkeeping.

        The pointer moves *before* the caller runs the completion
        callback, so a re-entrant bail (the callback submitting to the
        opposite direction) never replays the fired job.  The link's
        ``_flow_fire`` inlines this body on the hot path; keep the two
        in sync.
        """
        i = self.idx
        self.idx = i + 1
        ends = self.ends
        self.next_time = ends[i + 1] if i + 1 < len(ends) else None
        return self.jobs[i], self.starts[i], self.begins[i], ends[i]

    def bail_state(self) -> BailState:
        """Exact state of the un-fired remainder of the window."""
        i = self.idx
        jobs = self.jobs
        if i >= len(jobs):
            return BailState([], None, 0.0, 0.0, 0.0)
        return BailState(
            requeue=jobs[i + 1 :],
            active=jobs[i],
            active_start=self.starts[i],
            active_begin=self.begins[i],
            active_rate=self.rates[i],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidFlow jobs={len(self.jobs)} fired={self.idx} "
            f"contended={self.contended}>"
        )
