"""The simulated GPU device: façade over link, compute engine, memory.

A :class:`GpuDevice` is what the cuBLAS-like backend talks to.  It owns
the simulator clock, the duplex PCIe link, the kernel engine, memory
accounting, the machine's noise model, and (optionally) a trace
recorder.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import DeviceMemoryError, SimulationError, StreamError
from ..errors import RetryExhaustedError
from .engine import Simulator
from .faults import (
    FaultInjector,
    FaultPlan,
    ResilienceCounters,
    RetryPolicy,
    as_injector,
)
from .kernels import faulted_kernel_time
from .link import Direction, DuplexLink
from .machine import MachineConfig
from .memory import DeviceBuffer
from .noise import NoiseModel
from .stream import (
    KIND_D2H,
    KIND_EXEC,
    KIND_H2D,
    ComputeEngine,
    CudaEvent,
    Operation,
    Stream,
    _complete_operation,
)
from .trace import TraceRecorder


class GpuDevice:
    """One simulated host+GPU system built from a :class:`MachineConfig`."""

    def __init__(
        self,
        config: MachineConfig,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        trace: bool = False,
        faults: "FaultPlan | FaultInjector | None" = None,
        retry: Optional[RetryPolicy] = None,
        metrics=None,
        sim_mode: str = "exact",
    ) -> None:
        self.config = config
        #: ``sim_mode`` selects exact DES or hybrid fluid-flow for a
        #: device-owned clock; ignored when a shared ``sim`` is passed
        #: (the owner already chose).
        self.sim = sim if sim is not None else Simulator(mode=sim_mode)
        self.noise = NoiseModel(seed=seed, sigma=config.noise_sigma)
        self.trace: Optional[TraceRecorder] = TraceRecorder() if trace else None
        #: duck-typed MetricsRegistry (repro.obs.metrics); default None
        #: keeps every instrumentation point a no-op.
        self.metrics = metrics
        #: Fault injection is default-off: with no plan (argument or
        #: config.fault_plan) every fault hook below is skipped and the
        #: event stream is identical to the fault-free simulator's.
        self.faults: Optional[FaultInjector] = as_injector(
            faults if faults is not None else config.fault_plan
        )
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self.resilience = ResilienceCounters()
        #: RetryExhaustedErrors parked by async retry chains; surfaced
        #: by synchronize() since the failing op has no caller frame.
        self._fault_failures: list = []
        if self.faults is not None and metrics is not None:
            self.faults.metrics = metrics
        self.link = DuplexLink(
            self.sim, config.h2d, config.d2h, noise=self.noise,
            trace=self.trace, faults=self.faults, metrics=metrics,
        )
        self.compute = ComputeEngine(self.sim, noise=self.noise,
                                     trace=self.trace, metrics=metrics)
        self._used_bytes = 0
        self._streams: Dict[str, Stream] = {}

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    @property
    def mem_capacity(self) -> int:
        return self.config.gpu_mem_bytes

    @property
    def mem_used(self) -> int:
        return self._used_bytes

    @property
    def mem_free(self) -> int:
        return self.config.gpu_mem_bytes - self._used_bytes

    def alloc(
        self,
        nbytes: int,
        shape: Optional[Tuple[int, ...]] = None,
        dtype=None,
        with_data: bool = False,
        name: str = "",
    ) -> DeviceBuffer:
        """Allocate device memory; raises on simulated OOM.

        ``with_data=True`` materializes a numpy array (compute mode).
        Under injected memory pressure the usable capacity shrinks by
        the plan's static reservation, and individual allocations may
        transiently fail — those are re-tried in place up to the retry
        budget (pressure comes and goes) before the OOM propagates.
        """
        free = self.mem_free
        capacity = self.mem_capacity
        if self.faults is not None:
            pressure = self.faults.mem_pressure_bytes
            free -= pressure
            capacity -= pressure
            if nbytes <= free and self.faults.alloc_fails():
                attempts = 1
                while (attempts < self.retry_policy.max_attempts
                       and self.faults.alloc_fails()):
                    attempts += 1
                self.resilience.retries += attempts
                if attempts >= self.retry_policy.max_attempts:
                    raise DeviceMemoryError(nbytes, max(free, 0), capacity)
        if nbytes > free:
            raise DeviceMemoryError(nbytes, max(free, 0), capacity)
        array = None
        if with_data:
            if shape is None or dtype is None:
                raise SimulationError("with_data allocation requires shape and dtype")
            array = np.zeros(shape, dtype=dtype)
        buf = DeviceBuffer(nbytes, shape=shape, dtype=dtype, array=array, name=name)
        self._used_bytes += buf.nbytes
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        buf.check_alive()
        buf.freed = True
        buf.array = None
        self._used_bytes -= buf.nbytes
        if self._used_bytes < 0:
            raise SimulationError("device memory accounting went negative")

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------

    def create_stream(self, name: str = "") -> Stream:
        stream = Stream(self, name=name)
        self._streams[stream.name] = stream
        return stream

    def record_event(self, stream: Stream) -> CudaEvent:
        return stream.record_event()

    def synchronize(self) -> float:
        """cudaDeviceSynchronize: drain all pending work.

        Returns the virtual time at which the device became idle.
        """
        self.sim.run()
        if self._fault_failures:
            # A retry chain exhausted its budget: its op never
            # completed, so report the fault rather than the resulting
            # (expected) stuck streams.
            raise self._fault_failures[0]
        for stream in self._streams.values():
            if not stream.idle:
                raise StreamError(
                    f"stream {stream.name!r} still busy after global sync: "
                    "dependency deadlock (an operation waits on work that "
                    "was never enqueued)"
                )
        return self.sim.now

    # ------------------------------------------------------------------
    # asynchronous operations
    # ------------------------------------------------------------------

    def memcpy_h2d_async(
        self,
        nbytes: int,
        stream: Stream,
        tag: str = "",
        payload: Optional[Callable[[], None]] = None,
        verify: Optional[Callable[[], bool]] = None,
        corrupt: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a host-to-device copy of ``nbytes`` on ``stream``."""
        if self.faults is None:
            op = Operation(KIND_H2D, nbytes=nbytes, tag=tag, payload=payload)
            stream.enqueue(op, partial(
                self.link.submit, Direction.H2D, nbytes,
                on_complete=partial(_complete_operation, op), tag=tag,
            ))
            return op
        return self._transfer_async(Direction.H2D, nbytes, stream, tag,
                                    payload, verify, corrupt)

    def memcpy_d2h_async(
        self,
        nbytes: int,
        stream: Stream,
        tag: str = "",
        payload: Optional[Callable[[], None]] = None,
        verify: Optional[Callable[[], bool]] = None,
        corrupt: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a device-to-host copy of ``nbytes`` on ``stream``."""
        if self.faults is None:
            op = Operation(KIND_D2H, nbytes=nbytes, tag=tag, payload=payload)
            stream.enqueue(op, partial(
                self.link.submit, Direction.D2H, nbytes,
                on_complete=partial(_complete_operation, op), tag=tag,
            ))
            return op
        return self._transfer_async(Direction.D2H, nbytes, stream, tag,
                                    payload, verify, corrupt)

    def _transfer_async(
        self,
        direction: Direction,
        nbytes: int,
        stream: Stream,
        tag: str,
        payload: Optional[Callable[[], None]],
        verify: Optional[Callable[[], bool]] = None,
        corrupt: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a transfer; with faults active, a resilient one.

        ``verify`` re-checksums the destination after the payload copy
        (compute mode); ``corrupt`` applies the injected silent
        corruption to the destination.  Both are only consulted when a
        fault injector is attached.  The resilient path keeps the op
        *pending* across failed attempts — dependents wait, stream
        order is preserved — and re-submits with exponential backoff in
        simulated time; on budget exhaustion the op never completes and
        synchronize() raises :class:`RetryExhaustedError`.
        """
        kind = KIND_H2D if direction is Direction.H2D else KIND_D2H
        op = Operation(kind, nbytes=nbytes, tag=tag, payload=payload)
        faults = self.faults

        if faults is None:
            stream.enqueue(op, partial(
                self.link.submit, direction, nbytes,
                on_complete=partial(_complete_operation, op), tag=tag,
            ))
            return op

        policy = self.retry_policy

        def attempt() -> None:
            op.attempts += 1
            self.link.submit(
                direction,
                nbytes,
                on_complete=landed,
                on_fault=lambda: retry_or_park("transient transfer failure"),
                tag=tag,
            )

        def landed() -> None:
            # Bytes arrived: run the data copy, then model silent
            # corruption.  A re-fetch re-runs the payload, which
            # overwrites the corrupted destination with good data.
            if op.payload is not None:
                op.payload()
            corrupted = faults.corrupts_transfer()
            if corrupted and corrupt is not None:
                corrupt()
            # Compute mode detects corruption by checksum mismatch;
            # timing mode (no arrays to checksum) detects it directly.
            detected = (not verify()) if verify is not None else corrupted
            if detected:
                self.resilience.refetches += 1
                retry_or_park("tile corruption", is_refetch=True)
                return
            op.payload = None  # already ran; don't run it again
            _complete_operation(op)

        def retry_or_park(reason: str, is_refetch: bool = False) -> None:
            if op.attempts >= policy.max_attempts:
                self._fault_failures.append(
                    RetryExhaustedError(tag or kind, op.attempts, reason)
                )
                return
            if not is_refetch:
                self.resilience.retries += 1
            self.sim.schedule(policy.backoff(op.attempts), attempt)

        stream.enqueue(op, attempt)
        return op

    def launch_async(
        self,
        duration: float,
        stream: Stream,
        tag: str = "",
        flops: float = 0.0,
        payload: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a kernel of the given ground-truth ``duration``.

        With faults active the launch may abort partway through
        (occupying the engine for the aborted fraction) and is then
        re-issued with exponential backoff, up to the retry budget.
        """
        if duration < 0:
            raise SimulationError(f"negative kernel duration: {duration}")
        op = Operation(KIND_EXEC, duration=duration, flops=flops, tag=tag,
                       payload=payload)
        faults = self.faults

        if faults is None:
            stream.enqueue(op, partial(self.compute.submit, op))
            return op

        policy = self.retry_policy

        def attempt() -> None:
            op.attempts += 1
            if faults.kernel_faults():
                op.fault = True
                op.duration = faulted_kernel_time(duration)
                op.on_fault = aborted
            else:
                op.fault = False
                op.duration = duration
                op.on_fault = None
            self.compute.submit(op)

        def aborted() -> None:
            if op.attempts >= policy.max_attempts:
                self._fault_failures.append(
                    RetryExhaustedError(tag or KIND_EXEC, op.attempts,
                                        "kernel fault")
                )
                return
            self.resilience.kernel_retries += 1
            self.sim.schedule(policy.backoff(op.attempts), attempt)

        stream.enqueue(op, attempt)
        return op

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def transfer_count(self, direction: Direction) -> int:
        return self.link.stats(direction).transfers

    def bytes_moved(self, direction: Direction) -> int:
        return self.link.stats(direction).bytes_moved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GpuDevice {self.config.name} t={self.sim.now:.6f}s "
            f"mem={self._used_bytes}/{self.config.gpu_mem_bytes}>"
        )
