"""The simulated GPU device: façade over link, compute engine, memory.

A :class:`GpuDevice` is what the cuBLAS-like backend talks to.  It owns
the simulator clock, the duplex PCIe link, the kernel engine, memory
accounting, the machine's noise model, and (optionally) a trace
recorder.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import DeviceMemoryError, SimulationError, StreamError
from .engine import Simulator
from .link import Direction, DuplexLink
from .machine import MachineConfig
from .memory import DeviceBuffer
from .noise import NoiseModel
from .stream import (
    KIND_D2H,
    KIND_EXEC,
    KIND_H2D,
    ComputeEngine,
    CudaEvent,
    Operation,
    Stream,
    _complete_operation,
)
from .trace import TraceRecorder


class GpuDevice:
    """One simulated host+GPU system built from a :class:`MachineConfig`."""

    def __init__(
        self,
        config: MachineConfig,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        self.noise = NoiseModel(seed=seed, sigma=config.noise_sigma)
        self.trace: Optional[TraceRecorder] = TraceRecorder() if trace else None
        self.link = DuplexLink(
            self.sim, config.h2d, config.d2h, noise=self.noise, trace=self.trace
        )
        self.compute = ComputeEngine(self.sim, noise=self.noise, trace=self.trace)
        self._used_bytes = 0
        self._streams: Dict[str, Stream] = {}

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    @property
    def mem_capacity(self) -> int:
        return self.config.gpu_mem_bytes

    @property
    def mem_used(self) -> int:
        return self._used_bytes

    @property
    def mem_free(self) -> int:
        return self.config.gpu_mem_bytes - self._used_bytes

    def alloc(
        self,
        nbytes: int,
        shape: Optional[Tuple[int, ...]] = None,
        dtype=None,
        with_data: bool = False,
        name: str = "",
    ) -> DeviceBuffer:
        """Allocate device memory; raises on simulated OOM.

        ``with_data=True`` materializes a numpy array (compute mode).
        """
        if nbytes > self.mem_free:
            raise DeviceMemoryError(nbytes, self.mem_free, self.mem_capacity)
        array = None
        if with_data:
            if shape is None or dtype is None:
                raise SimulationError("with_data allocation requires shape and dtype")
            array = np.zeros(shape, dtype=dtype)
        buf = DeviceBuffer(nbytes, shape=shape, dtype=dtype, array=array, name=name)
        self._used_bytes += buf.nbytes
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        buf.check_alive()
        buf.freed = True
        buf.array = None
        self._used_bytes -= buf.nbytes
        if self._used_bytes < 0:
            raise SimulationError("device memory accounting went negative")

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------

    def create_stream(self, name: str = "") -> Stream:
        stream = Stream(self, name=name)
        self._streams[stream.name] = stream
        return stream

    def record_event(self, stream: Stream) -> CudaEvent:
        return stream.record_event()

    def synchronize(self) -> float:
        """cudaDeviceSynchronize: drain all pending work.

        Returns the virtual time at which the device became idle.
        """
        self.sim.run()
        for stream in self._streams.values():
            if not stream.idle:
                raise StreamError(
                    f"stream {stream.name!r} still busy after global sync: "
                    "dependency deadlock (an operation waits on work that "
                    "was never enqueued)"
                )
        return self.sim.now

    # ------------------------------------------------------------------
    # asynchronous operations
    # ------------------------------------------------------------------

    def memcpy_h2d_async(
        self,
        nbytes: int,
        stream: Stream,
        tag: str = "",
        payload: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a host-to-device copy of ``nbytes`` on ``stream``."""
        return self._transfer_async(Direction.H2D, nbytes, stream, tag, payload)

    def memcpy_d2h_async(
        self,
        nbytes: int,
        stream: Stream,
        tag: str = "",
        payload: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a device-to-host copy of ``nbytes`` on ``stream``."""
        return self._transfer_async(Direction.D2H, nbytes, stream, tag, payload)

    def _transfer_async(
        self,
        direction: Direction,
        nbytes: int,
        stream: Stream,
        tag: str,
        payload: Optional[Callable[[], None]],
    ) -> Operation:
        kind = KIND_H2D if direction is Direction.H2D else KIND_D2H
        op = Operation(kind, nbytes=nbytes, tag=tag, payload=payload)

        def dispatch() -> None:
            self.link.submit(
                direction,
                nbytes,
                on_complete=lambda: _complete_operation(op),
                tag=tag,
            )

        stream.enqueue(op, dispatch)
        return op

    def launch_async(
        self,
        duration: float,
        stream: Stream,
        tag: str = "",
        flops: float = 0.0,
        payload: Optional[Callable[[], None]] = None,
    ) -> Operation:
        """Enqueue a kernel of the given ground-truth ``duration``."""
        if duration < 0:
            raise SimulationError(f"negative kernel duration: {duration}")
        op = Operation(KIND_EXEC, duration=duration, flops=flops, tag=tag,
                       payload=payload)
        stream.enqueue(op, lambda: self.compute.submit(op))
        return op

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def transfer_count(self, direction: Direction) -> int:
        return self.link.stats(direction).transfers

    def bytes_moved(self, direction: Direction) -> int:
        return self.link.stats(direction).bytes_moved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GpuDevice {self.config.name} t={self.sim.now:.6f}s "
            f"mem={self._used_bytes}/{self.config.gpu_mem_bytes}>"
        )
