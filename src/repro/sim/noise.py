"""Seeded measurement noise for the simulated hardware.

Real micro-benchmarks are noisy, and the paper's deployment module
repeats each measurement until the 95% confidence interval of the mean
is within 5% of the mean.  To make that machinery meaningful in
simulation, every simulated duration is perturbed by a small
multiplicative lognormal factor drawn from a seeded RNG, so runs are
noisy but reproducible.
"""

from __future__ import annotations

import math

import numpy as np


#: Substream index per factor type; each draws from its own seeded RNG
#: so e.g. adding kernel launches never shifts the transfer-noise draws.
_FACTOR_STREAMS = {"duration": 0, "latency": 1, "rate": 2}


class NoiseModel:
    """Multiplicative lognormal noise on simulated durations.

    sigma
        Standard deviation of the underlying normal; 0 disables noise.
        Typical hardware jitter is 1-3%.

    Each factor type (duration / latency / rate) draws from its own
    independent substream of ``seed``, so enabling or reordering one
    noise consumer does not perturb the sequences the others see.
    """

    def __init__(self, seed: int = 0, sigma: float = 0.02) -> None:
        if sigma < 0:
            raise ValueError(f"negative noise sigma: {sigma}")
        self.seed = seed
        self.sigma = sigma
        self._rngs = self._fresh_rngs()

    def _fresh_rngs(self):
        return {
            name: np.random.default_rng([index, self.seed])
            for name, index in _FACTOR_STREAMS.items()
        }

    @classmethod
    def disabled(cls) -> "NoiseModel":
        """A noise model that always returns exactly 1.0."""
        return cls(seed=0, sigma=0.0)

    def _factor(self, stream: str) -> float:
        if self.sigma == 0.0:
            return 1.0
        return math.exp(self.sigma * float(self._rngs[stream].standard_normal()))

    def duration_factor(self) -> float:
        """Factor applied to a kernel execution duration."""
        return self._factor("duration")

    def latency_factor(self) -> float:
        """Factor applied to a transfer's setup latency."""
        return self._factor("latency")

    def rate_factor(self) -> float:
        """Factor applied to a transfer's effective bandwidth."""
        return self._factor("rate")

    def reset(self) -> None:
        """Rewind all substreams to the seed (identical future draws)."""
        self._rngs = self._fresh_rngs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseModel(seed={self.seed}, sigma={self.sigma})"
