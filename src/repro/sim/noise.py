"""Seeded measurement noise for the simulated hardware.

Real micro-benchmarks are noisy, and the paper's deployment module
repeats each measurement until the 95% confidence interval of the mean
is within 5% of the mean.  To make that machinery meaningful in
simulation, every simulated duration is perturbed by a small
multiplicative lognormal factor drawn from a seeded RNG, so runs are
noisy but reproducible.

Hot-path notes: normal deviates are drawn from the substream RNGs in
blocks and consumed one at a time, which amortizes the per-call
overhead of ``Generator.standard_normal`` across hundreds of draws.
NumPy generators produce the *same* deviate sequence whether drawn
singly or in blocks, and the lognormal factor is still computed per
draw with ``math.exp``, so every factor is bit-identical to the
unbuffered implementation.  Substream RNGs are created lazily on first
draw: devices whose runs never touch a factor type skip that
``default_rng`` construction entirely (device construction is itself a
hot path for the serving layer, which builds fresh devices per batch).

The first block of each ``(stream, seed)`` substream is additionally
memoized at module level: the serving layer creates hundreds of
short-lived devices per run, each drawing a handful of factors, and
re-serving the same workload reconstructs devices with the *same*
seeds — the cache turns ``SeedSequence`` hashing + generator
construction + the block draw into one dict lookup.  The block is a
pure function of ``(stream, seed)``, so sharing it across NoiseModel
instances cannot couple their sequences; a model that outlives its
first block constructs its RNG then and fast-forwards past the cached
block, which replays the identical deviate stream.
"""

from __future__ import annotations

import math

import numpy as np


#: Substream index per factor type; each draws from its own seeded RNG
#: so e.g. adding kernel launches never shifts the transfer-noise draws.
_FACTOR_STREAMS = {"duration": 0, "latency": 1, "rate": 2}

#: Normal deviates drawn per refill of one substream's buffer.
_BLOCK = 256

#: Memoized first deviate block per (stream index, seed); bounded so
#: pathological seed churn cannot grow it without limit.
_FIRST_BLOCKS: dict = {}
_FIRST_BLOCKS_CAP = 4096


class NoiseModel:
    """Multiplicative lognormal noise on simulated durations.

    sigma
        Standard deviation of the underlying normal; 0 disables noise.
        Typical hardware jitter is 1-3%.

    Each factor type (duration / latency / rate) draws from its own
    independent substream of ``seed``, so enabling or reordering one
    noise consumer does not perturb the sequences the others see.
    """

    def __init__(self, seed: int = 0, sigma: float = 0.02) -> None:
        if sigma < 0:
            raise ValueError(f"negative noise sigma: {sigma}")
        self.seed = seed
        self.sigma = sigma
        self._rngs = {}
        # Per-substream draw buffers: (deviate list, next index).
        self._buffers = {}
        # Blocks already consumed per substream (for RNG fast-forward
        # when the first block came from the module-level cache).
        self._blocks_done = {}

    @classmethod
    def disabled(cls) -> "NoiseModel":
        """A noise model that always returns exactly 1.0."""
        return cls(seed=0, sigma=0.0)

    def _factor(self, stream: str) -> float:
        if self.sigma == 0.0:
            return 1.0
        buf = self._buffers.get(stream)
        if buf is None or buf[1] >= len(buf[0]):
            buf = self._refill(stream)
        idx = buf[1]
        buf[1] = idx + 1
        return math.exp(self.sigma * buf[0][idx])

    def _refill(self, stream: str) -> list:
        """Produce the next ``_BLOCK`` deviates of one substream.

        The first block is served from (and populates) the module-level
        ``_FIRST_BLOCKS`` cache; later blocks come from the substream
        RNG, constructed on demand and fast-forwarded past any cached
        blocks so the deviate sequence is identical either way.
        """
        done = self._blocks_done.get(stream, 0)
        self._blocks_done[stream] = done + 1
        if done == 0:
            key = (_FACTOR_STREAMS[stream], self.seed)
            block = _FIRST_BLOCKS.get(key)
            if block is None:
                rng = np.random.default_rng(key)
                self._rngs[stream] = rng
                block = rng.standard_normal(_BLOCK).tolist()
                if len(_FIRST_BLOCKS) < _FIRST_BLOCKS_CAP:
                    _FIRST_BLOCKS[key] = block
        else:
            rng = self._rngs.get(stream)
            if rng is None:
                rng = np.random.default_rng(
                    [_FACTOR_STREAMS[stream], self.seed])
                rng.standard_normal(_BLOCK * done)  # skip cached blocks
                self._rngs[stream] = rng
            block = rng.standard_normal(_BLOCK).tolist()
        buf = [block, 0]
        self._buffers[stream] = buf
        return buf

    def duration_factor(self) -> float:
        """Factor applied to a kernel execution duration."""
        return self._factor("duration")

    def latency_factor(self) -> float:
        """Factor applied to a transfer's setup latency."""
        return self._factor("latency")

    def rate_factor(self) -> float:
        """Factor applied to a transfer's effective bandwidth."""
        return self._factor("rate")

    def reset(self) -> None:
        """Rewind all substreams to the seed (identical future draws)."""
        self._rngs = {}
        self._buffers = {}
        self._blocks_done = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseModel(seed={self.seed}, sigma={self.sigma})"
