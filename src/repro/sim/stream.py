"""CUDA-like streams, events, and the compute engine.

Semantics mirror the subset of CUDA the paper's library uses:

* operations enqueued on one stream execute in order;
* operations on different streams may overlap, subject to engine
  availability (one h2d copy engine, one d2h copy engine, one kernel
  engine);
* ``CudaEvent`` provides cross-stream ordering, as used by the tile
  scheduler to make a kernel wait for its tiles' transfers.

Engines pick among *ready* operations in issue order (no head-of-line
blocking across streams), which matches the behaviour of modern CUDA
hardware queues closely enough for the paper's pipelines.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, List, Optional

from ..errors import StreamError
from .engine import Simulator

_op_ids = itertools.count()

KIND_H2D = "h2d"
KIND_D2H = "d2h"
KIND_EXEC = "exec"
_VALID_KINDS = (KIND_H2D, KIND_D2H, KIND_EXEC)


class Operation:
    """A unit of asynchronous device work (transfer or kernel)."""

    __slots__ = (
        "op_id",
        "kind",
        "nbytes",
        "duration",
        "flops",
        "tag",
        "payload",
        "remaining_deps",
        "dependents",
        "done",
        "issued",
        "callbacks",
        "attempts",
        "fault",
        "on_fault",
        "_dispatch_fn",
    )

    def __init__(
        self,
        kind: str,
        nbytes: int = 0,
        duration: float = 0.0,
        flops: float = 0.0,
        tag: str = "",
        payload: Optional[Callable[[], None]] = None,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise StreamError(f"invalid operation kind: {kind!r}")
        self.op_id = next(_op_ids)
        self.kind = kind
        self.nbytes = nbytes
        self.duration = duration
        self.flops = flops
        self.tag = tag
        self.payload = payload
        self.remaining_deps = 0
        # Lazily created (None = empty): most ops never get a done
        # callback, and the two lists per op are real GC pressure at
        # tens of thousands of ops per simulated run.
        self.dependents: Optional[List["Operation"]] = None
        self.done = False
        self.issued = False
        self.callbacks: Optional[List[Callable[[], None]]] = None
        #: resilience bookkeeping (see repro.sim.faults): engine
        #: submissions of this op, whether the current attempt is
        #: fault-doomed, and the callback fired instead of completion.
        self.attempts = 0
        self.fault = False
        self.on_fault: Optional[Callable[[], None]] = None

    def add_dependency(self, dep: "Operation") -> None:
        """Make this op wait for ``dep`` (no-op if dep already done)."""
        if self.issued:
            raise StreamError("cannot add a dependency to an issued operation")
        if dep.done:
            return
        if dep.dependents is None:
            dep.dependents = [self]
        else:
            dep.dependents.append(self)
        self.remaining_deps += 1

    def on_done(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the op's completion time (immediately if done)."""
        if self.done:
            fn()
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        """Hand the op to its engine, exactly once."""
        if self.issued:
            raise StreamError(f"operation dispatched twice: {self!r}")
        self.issued = True
        self._dispatch_fn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("issued" if self.issued else "pending")
        return f"<Op #{self.op_id} {self.kind} {self.tag!r} {state}>"


class CudaEvent:
    """Cross-stream synchronization marker (cudaEventRecord/WaitEvent)."""

    __slots__ = ("_marker", "_recorded")

    def __init__(self) -> None:
        self._marker: Optional[Operation] = None
        self._recorded = False

    def _bind(self, marker: Optional[Operation]) -> None:
        self._marker = marker
        self._recorded = True

    @property
    def recorded(self) -> bool:
        return self._recorded

    @property
    def complete(self) -> bool:
        if not self._recorded:
            return False
        return self._marker is None or self._marker.done


class ComputeEngine:
    """The GPU's kernel execution engine: one kernel at a time, FIFO."""

    def __init__(self, sim: Simulator, noise=None, trace=None,
                 metrics=None) -> None:
        self._sim = sim
        self._noise = noise
        self._trace = trace
        #: duck-typed MetricsRegistry (repro.obs.metrics); None = off
        self._metrics = metrics
        # Metric handles resolved once instead of per kernel.
        if metrics is not None:
            self._m_count = metrics.counter("sim.kernel.count")
            self._m_seconds = metrics.counter("sim.kernel.seconds")
            self._m_flops = metrics.counter("sim.kernel.flops")
            self._m_faults = metrics.counter("sim.kernel.faults")
        self._queue: Deque[Operation] = deque()
        self._active: Optional[Operation] = None
        self._start_time = 0.0
        self.kernels_run = 0
        self.busy_time = 0.0

    @property
    def idle(self) -> bool:
        return self._active is None and not self._queue

    def submit(self, op: Operation) -> None:
        self._queue.append(op)
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._active is not None or not self._queue:
            return
        op = self._queue.popleft()
        self._active = op
        self._start_time = self._sim.now
        duration = op.duration
        if self._noise is not None:
            duration *= self._noise.duration_factor()
        self._sim.schedule(duration, self._finish)

    def _finish(self) -> None:
        op = self._active
        assert op is not None
        now = self._sim.now
        self.kernels_run += 1
        self.busy_time += now - self._start_time
        if self._trace is not None:
            self._trace.record(
                engine=KIND_EXEC,
                tag=op.tag + ("!fault" if op.fault else ""),
                start=self._start_time,
                end=now,
                flops=op.flops,
            )
        if self._metrics is not None:
            self._m_count.inc()
            self._m_seconds.inc(now - self._start_time)
            self._m_flops.inc(op.flops)
            if op.fault:
                self._m_faults.inc()
        self._active = None
        if op.fault:
            # Injected kernel abort: the engine was occupied for the
            # aborted fraction but the op neither ran its payload nor
            # completed; the device's retry machinery re-submits it.
            on_fault = op.on_fault
            if on_fault is not None:
                on_fault()
        else:
            _complete_operation(op)
        self._maybe_start()


def _complete_operation(op: Operation) -> None:
    """Run the payload, mark done, release dependents and callbacks."""
    if op.payload is not None:
        op.payload()
    op.done = True
    callbacks = op.callbacks
    if callbacks:
        op.callbacks = None
        for cb in callbacks:
            cb()
    dependents = op.dependents
    if dependents:
        op.dependents = None
        for dep in dependents:
            remaining = dep.remaining_deps - 1
            dep.remaining_deps = remaining
            if remaining == 0 and not dep.done:
                dep._dispatch()


class Stream:
    """An in-order queue of device operations (a CUDA stream)."""

    __slots__ = ("_device", "name", "_last", "_pending_waits",
                 "ops_enqueued")

    def __init__(self, device, name: str = "") -> None:
        self._device = device
        self.name = name or f"stream{next(_op_ids)}"
        self._last: Optional[Operation] = None
        self._pending_waits: List[Operation] = []
        self.ops_enqueued = 0

    @property
    def last_op(self) -> Optional[Operation]:
        return self._last

    def wait_event(self, event: CudaEvent) -> None:
        """All work enqueued after this call waits for ``event``."""
        if not event.recorded:
            raise StreamError("waiting on an event that was never recorded")
        if event._marker is not None and not event._marker.done:
            self._pending_waits.append(event._marker)

    def enqueue(self, op: Operation, dispatch: Callable[[], None]) -> None:
        """Attach stream-order dependencies and issue when ready.

        ``dispatch`` hands the op to its engine; it runs now if all
        dependencies are already satisfied, later otherwise.

        The dependency attachment is ``Operation.add_dependency``
        inlined (a fresh op is never issued, so the issued guard is
        statically satisfied): this runs once per simulated operation.
        """
        op._dispatch_fn = dispatch
        deps = 0
        last = self._last
        if last is not None and not last.done:
            if last.dependents is None:
                last.dependents = [op]
            else:
                last.dependents.append(op)
            deps = 1
        waits = self._pending_waits
        if waits:
            for marker in waits:
                if not marker.done:
                    if marker.dependents is None:
                        marker.dependents = [op]
                    else:
                        marker.dependents.append(op)
                    deps += 1
            waits.clear()
        if deps:
            op.remaining_deps += deps
        self._last = op
        self.ops_enqueued += 1
        if op.remaining_deps == 0:
            op._dispatch()

    def record_event(self) -> CudaEvent:
        """Record an event capturing all work enqueued so far."""
        ev = CudaEvent()
        ev._bind(self._last)
        return ev

    def synchronize(self) -> None:
        """Run the simulator until all work in this stream completes."""
        last = self._last
        if last is None:
            return
        # run_done is run_until(lambda: last.done) minus the per-event
        # closure call; firing order is identical.
        self._device.sim.run_done(last)
        if not last.done:
            failures = getattr(self._device, "_fault_failures", None)
            if failures:
                raise failures[0]
            raise StreamError(
                f"stream {self.name!r} did not drain: dependency deadlock"
            )

    @property
    def idle(self) -> bool:
        return self._last is None or self._last.done
