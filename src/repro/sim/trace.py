"""Timeline tracing for the simulated engines.

Every engine activity (h2d transfer, d2h transfer, kernel execution)
can be recorded as a :class:`TraceEvent`.  The recorder feeds two
consumers: assertions in tests (e.g. "the compute engine was never idle
between subkernels") and the Fig. 2-style ASCII pipeline rendering used
by ``repro.experiments.fig2_pipeline``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One contiguous activity interval on one engine."""

    engine: str
    tag: str
    start: float
    end: float
    nbytes: int = 0
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates engine activity intervals in completion order."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.enabled = True

    def record(
        self,
        engine: str,
        tag: str,
        start: float,
        end: float,
        nbytes: int = 0,
        flops: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        if end < start:
            raise SimulationError(
                f"trace event {tag!r} on {engine!r} ends before it starts: "
                f"start={start}, end={end}"
            )
        if nbytes < 0:
            raise SimulationError(
                f"trace event {tag!r} on {engine!r} has negative nbytes: "
                f"{nbytes}"
            )
        if flops < 0:
            raise SimulationError(
                f"trace event {tag!r} on {engine!r} has negative flops: "
                f"{flops}"
            )
        self.events.append(TraceEvent(engine, tag, start, end, nbytes, flops))

    def clear(self) -> None:
        self.events.clear()

    def by_engine(self, engine: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.engine == engine]

    def engines(self) -> List[str]:
        seen: Dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.engine, None)
        return list(seen)

    def busy_time(self, engine: str) -> float:
        """Total busy time of an engine (intervals never overlap because
        each engine processes one job at a time)."""
        return sum(ev.duration for ev in self.by_engine(engine))

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(ev.end for ev in self.events) - min(ev.start for ev in self.events)

    def overlap_time(self, engine_a: str, engine_b: str) -> float:
        """Total time during which both engines were simultaneously busy."""
        total = 0.0
        evs_b = sorted(self.by_engine(engine_b), key=lambda e: e.start)
        for ea in self.by_engine(engine_a):
            for eb in evs_b:
                lo = max(ea.start, eb.start)
                hi = min(ea.end, eb.end)
                if hi > lo:
                    total += hi - lo
                if eb.start >= ea.end:
                    break
        return total


def to_chrome_trace(trace: TraceRecorder, time_unit: float = 1e-6) -> List[dict]:
    """Export the trace in Chrome trace-event format.

    Load the JSON-dumped result in ``chrome://tracing`` / Perfetto for
    an interactive pipeline timeline.  ``time_unit`` converts simulated
    seconds to the microsecond timestamps the format expects.
    """
    events: List[dict] = []
    for tid, engine in enumerate(trace.engines()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": engine},
        })
        for ev in trace.by_engine(engine):
            events.append({
                "name": ev.tag or engine,
                "cat": engine,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": ev.start / time_unit,
                "dur": ev.duration / time_unit,
                "args": {"nbytes": ev.nbytes, "flops": ev.flops},
            })
    return events


def utilization_report(trace: TraceRecorder) -> Dict[str, float]:
    """Per-engine busy fraction of the makespan (plus 'overlap_h2d_exec')."""
    span = trace.makespan()
    if span <= 0:
        return {}
    report = {
        engine: trace.busy_time(engine) / span for engine in trace.engines()
    }
    if "h2d" in report and "exec" in report:
        report["overlap_h2d_exec"] = trace.overlap_time("h2d", "exec") / span
    return report


def render_timeline(
    trace: TraceRecorder,
    width: int = 100,
    engines: Optional[Iterable[str]] = None,
    charset: Optional[Dict[str, str]] = None,
) -> str:
    """Render the trace as an ASCII timeline, one row per engine.

    This is the reproduction medium for the paper's Fig. 2 pipeline
    illustration: each engine's busy intervals are drawn as filled
    blocks on a common time axis.
    """
    if not trace.events:
        return "(empty trace)"
    names = list(engines) if engines is not None else trace.engines()
    t0 = min(ev.start for ev in trace.events)
    t1 = max(ev.end for ev in trace.events)
    span = max(t1 - t0, 1e-12)
    default_chars = {"h2d": "v", "d2h": "^", "exec": "#"}
    chars = dict(default_chars)
    if charset:
        chars.update(charset)
    lines = []
    label_w = max(len(n) for n in names) + 1
    for name in names:
        row = [" "] * width
        for ev in trace.by_engine(name):
            lo = int((ev.start - t0) / span * (width - 1))
            hi = int((ev.end - t0) / span * (width - 1))
            ch = chars.get(name, "#")
            for i in range(lo, max(hi, lo) + 1):
                row[i] = ch
        lines.append(f"{name.rjust(label_w)} |{''.join(row)}|")
    axis = f"{' ' * label_w} 0{' ' * (width - len(f'{span * 1e3:.2f} ms') - 1)}{span * 1e3:.2f} ms"
    lines.append(axis)
    return "\n".join(lines)
