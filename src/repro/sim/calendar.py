"""Calendar-queue event scheduler (Brown 1988).

A calendar queue spreads pending events over an array of time buckets
("days") of fixed width; the bucket index for an event is
``int(time / width) % nbuckets``.  With a width close to the mean
inter-event gap, enqueue and dequeue are O(1) amortized — the queue
behaves like a desk calendar: today's page holds today's events, and
finding the next event means flipping forward at most a few pages.

Contract with the engine:

* entries are ``(time, seq, handle)`` tuples with unique ``seq``
  values, so tuple comparison never reaches the handle and the total
  order is exactly ``(time, seq)`` — the same order the binary heap
  produces.  Equal timestamps therefore pop in FIFO scheduling order,
  which is what keeps exact-mode traces byte-identical across
  schedulers.
* times never move backwards past the last popped entry (the simulator
  clock is monotone), but pushes *at* the current time are common
  (zero-delay chains), and pushes may land arbitrarily far in the
  future (watchdogs), so the bucket scan falls back to a direct
  minimum search after one empty "year".
* the bucket count resizes by powers of two when the population
  doubles or halves, re-estimating the width from a sample of the
  pending inter-event gaps.  Resizing is deterministic — no clocks, no
  randomness — so replays are reproducible.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, List, Optional, Sequence, Tuple

#: Entries are (time, seq, handle); seq is unique per simulator.
Entry = Tuple[float, int, object]

_MIN_BUCKETS = 4
_WIDTH_SAMPLE = 64


class CalendarQueue:
    """O(1)-amortized priority queue over ``(time, seq)`` keys."""

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_inv_width",
        "_count",
        "_vcursor",
        "_hi",
        "_lo",
    )

    def __init__(self, width: float = 1.0, nbuckets: int = _MIN_BUCKETS):
        if nbuckets < _MIN_BUCKETS or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two >= {_MIN_BUCKETS}")
        if not width > 0.0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._init(nbuckets, width, ())

    def _init(self, nbuckets: int, width: float, entries: Sequence[Entry]) -> None:
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._hi = nbuckets << 1
        self._lo = nbuckets >> 1
        buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._buckets = buckets
        self._count = len(entries)
        if entries:
            inv = self._inv_width
            mask = self._mask
            self._vcursor = min(int(e[0] * inv) for e in entries)
            for entry in entries:
                b = buckets[int(entry[0] * inv) & mask]
                if b and entry < b[-1]:
                    insort(b, entry)
                else:
                    b.append(entry)
        else:
            self._vcursor = 0

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def push(self, entry: Entry) -> None:
        """Insert an entry, keeping its bucket sorted."""
        vb = int(entry[0] * self._inv_width)
        b = self._buckets[vb & self._mask]
        if b and entry < b[-1]:
            insort(b, entry)
        else:
            b.append(entry)
        if vb < self._vcursor:
            # A push into an earlier "day" than the cursor (possible
            # right after a direct-search jump): rewind so the scan
            # cannot walk past it.
            self._vcursor = vb
        self._count += 1
        if self._count > self._hi:
            self._resize(self._nbuckets << 1)

    def _locate(self) -> Optional[List[Entry]]:
        """Bucket holding the global minimum; advances the cursor.

        Scans at most one full year from the cursor; a sparse queue
        (next event several years out) falls back to a direct minimum
        search so a pop is never worse than O(nbuckets + n).
        """
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        vc = self._vcursor
        for _ in range(self._nbuckets):
            b = buckets[vc & mask]
            # The in-year test uses the same int(time * inv) arithmetic
            # as push so an entry can never be misclassified relative
            # to its own bucket index.
            if b and int(b[0][0] * inv) <= vc:
                self._vcursor = vc
                return b
            vc += 1
        best: Optional[Entry] = None
        best_bucket: Optional[List[Entry]] = None
        for b in buckets:
            if b and (best is None or b[0] < best):
                best = b[0]
                best_bucket = b
        self._vcursor = int(best[0] * inv)
        return best_bucket

    def pop(self) -> Optional[Entry]:
        """Remove and return the smallest entry, or None when empty."""
        b = self._locate()
        if b is None:
            return None
        entry = b.pop(0)
        self._count -= 1
        if self._count < self._lo and self._nbuckets > _MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        return entry

    def peek(self) -> Optional[Entry]:
        """Smallest entry without removing it, or None when empty."""
        b = self._locate()
        return b[0] if b is not None else None

    def pop_batch(self) -> List[Entry]:
        """Remove and return *all* entries at the minimum timestamp.

        Equal times map to the same bucket and buckets are sorted, so
        the batch is a contiguous run at the bucket front, already in
        seq (FIFO) order.
        """
        b = self._locate()
        if b is None:
            return []
        t0 = b[0][0]
        n = len(b)
        j = 1
        while j < n and b[j][0] == t0:
            j += 1
        batch = b[:j]
        del b[:j]
        self._count -= j
        if self._count < self._lo and self._nbuckets > _MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        return batch

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------

    def _resize(self, nbuckets: int) -> None:
        entries: List[Entry] = []
        for b in self._buckets:
            entries.extend(b)
        self._init(nbuckets, self._estimate_width(entries), entries)

    def _estimate_width(self, entries: List[Entry]) -> float:
        """Width ~ 3x the mean positive inter-event gap of a sample."""
        if len(entries) < 2:
            return self._width
        times = sorted(e[0] for e in entries[:_WIDTH_SAMPLE])
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return self._width
        width = 3.0 * (sum(gaps) / len(gaps))
        if not (0.0 < width < float("inf")):
            return self._width
        return width

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def nbuckets(self) -> int:
        return self._nbuckets

    @property
    def width(self) -> float:
        return self._width

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Entry]:
        for b in self._buckets:
            yield from b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue n={self._count} buckets={self._nbuckets} "
            f"width={self._width:.3g}>"
        )
