"""Deterministic fault injection for the simulated machine.

Production offload runtimes (BLASX-style multi-GPU BLAS, unified-memory
frameworks) must survive transient link errors, flaky kernels, and
memory pressure.  The seed reproduced only the paper's happy path; this
module gives the simulator a hostile mode so the runtime's resilience
machinery (``repro.runtime``) has something real to push against.

Design rules:

* **Default off.**  No component consults an injector unless a
  :class:`FaultPlan` was attached to the machine/device, so fault-free
  runs are byte-identical to the pre-fault simulator.
* **Seeded and deterministic.**  Every fault category draws from its
  own independent substream of ``plan.seed``, so the same seed + plan
  always yields the same fault schedule, and changing one category's
  rate never shifts another category's draws.
* **Declarative.**  A plan combines per-event probabilities with an
  explicit schedule (``(kind, index)`` pairs), so tests can force the
  Nth h2d transfer to fail without touching probabilities.

Fault categories:

``h2d`` / ``d2h``
    Transient transfer failure: the transfer occupies the link for its
    full duration, then reports failure (CRC-style) instead of landing.
``kernel``
    A launched kernel aborts partway through its nominal duration.
``corrupt``
    Silent tile data corruption: the transfer "succeeds" but the
    payload is perturbed; only per-tile checksums can detect it.
``bandwidth``
    Transient bandwidth collapse: one transfer flows at a fraction of
    the link rate (congestion / degraded lanes).
``alloc``
    Artificial device-memory pressure: a static reservation shrinks the
    usable capacity, and/or individual allocations transiently fail.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import ClassVar, Dict, Optional, Tuple

import numpy as np

from ..errors import SimulationError

FAULT_KINDS = ("h2d", "d2h", "kernel", "corrupt", "bandwidth", "alloc")

LIFECYCLE_KINDS = ("device_failure", "device_degradation", "link_brownout")


@dataclass(frozen=True)
class LifecycleFault:
    """One device-lifecycle event on the serve-time simulator clock.

    Unlike the per-event fault categories above (which perturb a single
    transfer or kernel), a lifecycle fault changes the *availability* of
    a whole fault domain for a window of simulated time: it has an
    ``onset`` and a ``duration`` (``math.inf`` = permanent) and is
    interpreted by the serving layer, not by the per-device injector —
    the device that dies is a property of the fleet, not of one
    pipeline.  Subclasses fix ``kind``.
    """

    device: int        #: GPU index within the serving fleet
    onset: float       #: absolute simulated seconds of the event start
    duration: float = math.inf  #: seconds until recovery (inf = never)

    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.device < 0:
            raise SimulationError(
                f"negative lifecycle fault device: {self.device}")
        if not self.onset >= 0.0:
            raise SimulationError(
                f"lifecycle fault onset must be >= 0, got {self.onset}")
        if not self.duration > 0.0:
            raise SimulationError(
                f"lifecycle fault duration must be > 0, got {self.duration}")

    @property
    def end(self) -> float:
        """Absolute simulated time of recovery (``inf`` = permanent)."""
        return self.onset + self.duration

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready description (infinite duration maps to null)."""
        return {
            "kind": self.kind,
            "device": self.device,
            "onset": self.onset,
            "duration": (self.duration if math.isfinite(self.duration)
                         else None),
        }


@dataclass(frozen=True)
class DeviceFailure(LifecycleFault):
    """The device dies at ``onset``: in-flight work is lost, the domain
    must be drained, and nothing completes on it until recovery."""

    kind: ClassVar[str] = "device_failure"


@dataclass(frozen=True)
class DeviceDegradation(LifecycleFault):
    """The device clocks down: work launched during the window runs
    ``slowdown`` times slower than the deployed models predict."""

    slowdown: float = 2.0

    kind: ClassVar[str] = "device_degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.slowdown > 1.0 or not math.isfinite(self.slowdown):
            raise SimulationError(
                f"degradation slowdown must be a finite factor > 1, got "
                f"{self.slowdown}")

    def as_dict(self) -> Dict[str, object]:
        doc = super().as_dict()
        doc["slowdown"] = self.slowdown
        return doc


@dataclass(frozen=True)
class LinkBrownout(LifecycleFault):
    """The device's PCIe link browns out: transfers launched during the
    window flow at ``bandwidth_factor`` of the nominal link rate."""

    bandwidth_factor: float = 0.25

    kind: ClassVar[str] = "link_brownout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.bandwidth_factor < 1.0:
            raise SimulationError(
                f"brownout bandwidth_factor must be in (0, 1), got "
                f"{self.bandwidth_factor}")

    def as_dict(self) -> Dict[str, object]:
        doc = super().as_dict()
        doc["bandwidth_factor"] = self.bandwidth_factor
        return doc


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    All rates are per-event probabilities in ``[0, 1]``; ``scheduled``
    entries are ``(kind, index)`` pairs firing at the index-th event of
    that kind (0-based), independent of the probability draws.
    """

    name: str = "custom"
    seed: int = 0
    #: Probability that one transfer attempt fails (per direction).
    transfer_fail_rate: float = 0.0
    #: Probability that one kernel launch aborts mid-execution.
    kernel_fail_rate: float = 0.0
    #: Probability that one transfer silently corrupts its payload.
    corruption_rate: float = 0.0
    #: Probability that one transfer flows at collapsed bandwidth.
    bandwidth_collapse_rate: float = 0.0
    #: Rate multiplier (0, 1] applied during a bandwidth collapse.
    bandwidth_collapse_factor: float = 0.25
    #: Static reservation subtracted from the usable device memory.
    mem_pressure_bytes: int = 0
    #: Probability that one allocation transiently fails.
    mem_pressure_rate: float = 0.0
    #: Explicit (kind, index) faults, independent of the rates.
    scheduled: Tuple[Tuple[str, int], ...] = ()
    #: Serve-time device-lifecycle events (failures / degradations /
    #: link brownouts).  Interpreted by the serving layer; the per-device
    #: injector ignores them.
    lifecycle: Tuple[LifecycleFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("transfer_fail_rate", "kernel_fail_rate",
                     "corruption_rate", "bandwidth_collapse_rate",
                     "mem_pressure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        if not 0.0 < self.bandwidth_collapse_factor <= 1.0:
            raise SimulationError(
                "bandwidth_collapse_factor must be in (0, 1], got "
                f"{self.bandwidth_collapse_factor}"
            )
        if self.mem_pressure_bytes < 0:
            raise SimulationError(
                f"negative mem_pressure_bytes: {self.mem_pressure_bytes}"
            )
        for entry in self.scheduled:
            kind, index = entry
            if kind not in FAULT_KINDS:
                raise SimulationError(
                    f"unknown scheduled fault kind {kind!r}; "
                    f"valid: {FAULT_KINDS}"
                )
            if index < 0:
                raise SimulationError(f"negative scheduled fault index: {index}")
        for event in self.lifecycle:
            if not isinstance(event, LifecycleFault):
                raise SimulationError(
                    f"lifecycle entries must be LifecycleFault instances, "
                    f"got {event!r}")

    @property
    def any_event_faults(self) -> bool:
        """Whether this plan injects per-event faults (a device-level
        :class:`FaultInjector` is only needed for these)."""
        return bool(
            self.transfer_fail_rate or self.kernel_fail_rate
            or self.corruption_rate or self.bandwidth_collapse_rate
            or self.mem_pressure_bytes or self.mem_pressure_rate
            or self.scheduled
        )

    @property
    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        return self.any_event_faults or bool(self.lifecycle)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


#: Named plans for the CLI / benchmarks (``--faults light`` etc.).
NAMED_PLANS: Dict[str, FaultPlan] = {
    "light": FaultPlan(name="light", seed=11,
                       transfer_fail_rate=0.01, kernel_fail_rate=0.005,
                       corruption_rate=0.005,
                       bandwidth_collapse_rate=0.01),
    "moderate": FaultPlan(name="moderate", seed=23,
                          transfer_fail_rate=0.03, kernel_fail_rate=0.01,
                          corruption_rate=0.01,
                          bandwidth_collapse_rate=0.03,
                          mem_pressure_rate=0.002),
    "heavy": FaultPlan(name="heavy", seed=37,
                       transfer_fail_rate=0.05, kernel_fail_rate=0.02,
                       corruption_rate=0.02,
                       bandwidth_collapse_rate=0.05,
                       mem_pressure_rate=0.005),
}

_SPEC_FIELDS = {f.name for f in fields(FaultPlan)} - {"name", "scheduled",
                                                     "lifecycle"}


def resolve_plan(spec: "str | FaultPlan | None") -> Optional[FaultPlan]:
    """Turn a CLI spec into a :class:`FaultPlan`.

    Accepts a plan instance, ``None``, a named plan (``"heavy"``), or a
    ``key=value`` list such as
    ``"transfer_fail_rate=0.05,kernel_fail_rate=0.01,seed=3"``.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    name = spec.strip()
    if name in NAMED_PLANS:
        return NAMED_PLANS[name]
    if "=" not in name:
        raise SimulationError(
            f"unknown fault plan {name!r}; named plans: "
            f"{sorted(NAMED_PLANS)} (or key=value,... with keys "
            f"{sorted(_SPEC_FIELDS)})"
        )
    kwargs: Dict[str, object] = {"name": "cli"}
    for item in name.split(","):
        key, _, value = item.partition("=")
        key = key.strip()
        if key not in _SPEC_FIELDS:
            raise SimulationError(
                f"unknown fault plan key {key!r}; valid: {sorted(_SPEC_FIELDS)}"
            )
        try:
            kwargs[key] = (int(value) if key in ("seed", "mem_pressure_bytes")
                           else float(value))
        except ValueError:
            raise SimulationError(
                f"fault plan key {key!r} needs a number, got {value!r}"
            ) from None
    return FaultPlan(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class TransferOutcome:
    """What the injector decided for one transfer attempt."""

    fail: bool = False
    rate_factor: float = 1.0


@dataclass
class ResilienceCounters:
    """What the resilience machinery had to do during one run."""

    retries: int = 0          #: transfer/alloc re-tries after transient failures
    kernel_retries: int = 0   #: kernel re-launches after aborts
    refetches: int = 0        #: corruption-triggered re-transfers
    tile_downshifts: int = 0  #: T reductions under memory pressure
    host_fallbacks: int = 0   #: whole-routine falls back to host BLAS

    def total(self) -> int:
        return (self.retries + self.kernel_retries + self.refetches
                + self.tile_downshifts + self.host_fallbacks)

    def any(self) -> bool:
        return self.total() > 0

    def add(self, other: "ResilienceCounters") -> None:
        self.retries += other.retries
        self.kernel_retries += other.kernel_retries
        self.refetches += other.refetches
        self.tile_downshifts += other.tile_downshifts
        self.host_fallbacks += other.host_fallbacks

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "kernel_retries": self.kernel_retries,
            "refetches": self.refetches,
            "tile_downshifts": self.tile_downshifts,
            "host_fallbacks": self.host_fallbacks,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff in *simulated* time."""

    max_attempts: int = 4
    #: Backoff before the second attempt, in simulated seconds.
    base_backoff: float = 20e-6
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0:
            raise SimulationError(
                f"negative base_backoff: {self.base_backoff}"
            )
        if self.backoff_factor < 1.0:
            raise SimulationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempts_done: int) -> float:
        """Delay before the next attempt after ``attempts_done`` tries."""
        return self.base_backoff * self.backoff_factor ** max(
            attempts_done - 1, 0)


class FaultInjector:
    """Stateful, seeded executor of a :class:`FaultPlan`.

    Each fault category draws from an independent ``(seed, category)``
    substream, so category decision sequences never interfere.  The
    injector counts events per category; scheduled faults match on that
    count.  One injector is normally shared across the downshift
    attempts of a single routine call, so transient faults do not
    replay identically on every attempt.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: duck-typed MetricsRegistry (repro.obs.metrics); attached by
        #: the device/runtime layer, None = no metric emission
        self.metrics = None
        self._scheduled: Dict[str, set] = {}
        for kind, index in plan.scheduled:
            self._scheduled.setdefault(kind, set()).add(index)
        #: Events seen per category (denominator of the fault rates).
        self.events: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        #: Faults injected per category.
        self.injected: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._rngs = {
            kind: np.random.default_rng([plan.seed, i])
            for i, kind in enumerate(FAULT_KINDS)
        }

    def reset(self) -> None:
        """Rewind all substreams and counters to the initial state."""
        self.events = {k: 0 for k in FAULT_KINDS}
        self.injected = {k: 0 for k in FAULT_KINDS}
        self._rngs = {
            kind: np.random.default_rng([self.plan.seed, i])
            for i, kind in enumerate(FAULT_KINDS)
        }

    def _decide(self, kind: str, rate: float) -> bool:
        """One event of ``kind``: advance its substream and decide."""
        index = self.events[kind]
        self.events[kind] = index + 1
        hit = index in self._scheduled.get(kind, ())
        if rate > 0.0 and float(self._rngs[kind].random()) < rate:
            hit = True
        if hit:
            self.injected[kind] += 1
            if self.metrics is not None:
                self.metrics.counter(f"sim.faults.injected.{kind}").inc()
        return hit

    # ------------------------------------------------------------------
    # hooks, one per wiring point
    # ------------------------------------------------------------------

    def transfer_outcome(self, direction_value: str) -> TransferOutcome:
        """Decide failure + bandwidth collapse for one transfer attempt.

        ``direction_value`` is ``"h2d"`` or ``"d2h"`` (kept as a string
        so the link layer stays the only importer of ``Direction``).
        """
        fail = self._decide(direction_value, self.plan.transfer_fail_rate)
        factor = 1.0
        if self._decide("bandwidth", self.plan.bandwidth_collapse_rate):
            factor = self.plan.bandwidth_collapse_factor
        return TransferOutcome(fail=fail, rate_factor=factor)

    def corrupts_transfer(self) -> bool:
        """Whether this transfer attempt silently corrupts its payload."""
        return self._decide("corrupt", self.plan.corruption_rate)

    def kernel_faults(self) -> bool:
        """Whether this kernel launch aborts mid-execution."""
        return self._decide("kernel", self.plan.kernel_fail_rate)

    def alloc_fails(self) -> bool:
        """Whether this allocation transiently fails (memory pressure)."""
        return self._decide("alloc", self.plan.mem_pressure_rate)

    @property
    def mem_pressure_bytes(self) -> int:
        """Static reservation shrinking the usable device memory."""
        return self.plan.mem_pressure_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inj = {k: v for k, v in self.injected.items() if v}
        return f"FaultInjector(plan={self.plan.name!r}, injected={inj})"


def as_injector(
    faults: "FaultPlan | FaultInjector | None",
) -> Optional[FaultInjector]:
    """Normalize a plan-or-injector argument; ``None`` passes through."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        # Lifecycle-only plans need no per-device injector: a device
        # failing or clocking down is fleet-level state, and skipping
        # the injector keeps lifecycle-only devices on the fault-free
        # fast path (byte-identical pipelines).
        return FaultInjector(faults) if faults.any_event_faults else None
    raise SimulationError(f"expected FaultPlan or FaultInjector, got {faults!r}")


def tile_checksum(array: np.ndarray) -> int:
    """Per-tile checksum used to detect silent corruption.

    Adler-32 over the raw bytes: cheap, deterministic, and sensitive to
    any bit flip the corruption hook applies.
    """
    return zlib.adler32(np.ascontiguousarray(array).tobytes())


def corrupt_array(array: np.ndarray) -> None:
    """Deterministically perturb a tile in place (silent corruption).

    Flips a few spread-out elements by a finite offset so checksums
    always notice but the damage is not trivially at one corner.
    """
    flat = array.reshape(-1)
    if flat.size == 0:
        return
    step = max(flat.size // 3, 1)
    flat[::step] += flat.dtype.type(1.0)
