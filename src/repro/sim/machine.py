"""Machine configurations: the two paper testbeds plus custom machines.

All ground-truth numbers for Testbed I / II come from Tables II and III
of the paper (link latencies, uni/bidirectional bandwidths, slowdown
factors, peak FLOP rates, PCIe generation, GPU memory).  Kernel-model
shape parameters are chosen so the simulated machines reproduce the
paper's qualitative behaviours (Fig. 1 break-points, V100 spikes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..units import from_gb_per_s, from_tflops, gib
from .faults import FaultPlan
from .kernels import AxpyTimeModel, GemmTimeModel, KernelModelSet
from .link import LinkDirectionConfig


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a simulated host+GPU system."""

    name: str
    display_name: str
    cpu: str
    gpu: str
    pcie: str
    h2d: LinkDirectionConfig
    d2h: LinkDirectionConfig
    gpu_mem_bytes: int
    kernels: KernelModelSet
    #: Effective unified-memory migration bandwidth, as a fraction of the
    #: h2d bandwidth (page-fault handling overhead).
    um_bandwidth_factor: float = 0.70
    #: Fraction of migration hidden by prefetching in the UM baseline.
    um_prefetch_overlap: float = 0.70
    #: Sustained host-CPU dgemm rate (FLOP/s) for host-assisted
    #: execution; the FP32 rate is taken as twice this.
    cpu_gemm_flops: float = 1.5e11
    noise_sigma: float = 0.015
    #: Default-off fault injection: devices built from this config
    #: consult the plan (see :mod:`repro.sim.faults`).  ``None`` keeps
    #: the simulator on its fault-free fast path.
    fault_plan: Optional[FaultPlan] = None

    def with_noise(self, sigma: float) -> "MachineConfig":
        """A copy of this config with a different noise level."""
        return replace(self, noise_sigma=sigma)

    def with_faults(self, plan: Optional[FaultPlan]) -> "MachineConfig":
        """A copy of this config with a fault-injection plan attached."""
        return replace(self, fault_plan=plan)

    def with_degradation(self, compute_slowdown: float = 1.0,
                         bandwidth_factor: float = 1.0) -> "MachineConfig":
        """A copy modelling a degraded device / browned-out link.

        ``compute_slowdown`` (>= 1) slows every kernel model uniformly
        (a clocked-down GPU); ``bandwidth_factor`` (in (0, 1]) scales
        both link directions (a browned-out PCIe link).  The serving
        layer builds per-batch devices from this copy while a
        :class:`~repro.sim.faults.DeviceDegradation` or
        :class:`~repro.sim.faults.LinkBrownout` window is open; the
        identity arguments return configs indistinguishable from the
        healthy machine.
        """
        if not compute_slowdown >= 1.0:
            raise ValueError(
                f"compute_slowdown must be >= 1, got {compute_slowdown}")
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}")
        if compute_slowdown == 1.0 and bandwidth_factor == 1.0:
            return self
        h2d, d2h = self.h2d, self.d2h
        if bandwidth_factor != 1.0:
            h2d = replace(h2d, bandwidth=h2d.bandwidth * bandwidth_factor)
            d2h = replace(d2h, bandwidth=d2h.bandwidth * bandwidth_factor)
        return replace(self, kernels=self.kernels.scaled(compute_slowdown),
                       h2d=h2d, d2h=d2h)


def testbed_i() -> MachineConfig:
    """Paper Testbed I: Intel host + NVIDIA Tesla K40, PCIe Gen2 x8.

    Table II: h2d 3.15 GB/s (2.94 bidirectional), d2h 3.29 GB/s (2.84
    bidirectional) => slowdowns 1.07 / 1.16; latencies ~2.4/2.2 us.
    Table III: FP32 peak 4.29 TFLOP/s, FP64 1.43 TFLOP/s, 12 GB.
    """
    gemm_f64 = GemmTimeModel(
        peak_flops=from_tflops(1.43),
        launch_overhead=8e-6,
        mn_block=128,
        k_block=16,
        grid_half=6.0,
        k_half=128.0,
        max_eff=0.93,
        spike_amp=0.015,
    )
    gemm_f32 = GemmTimeModel(
        peak_flops=from_tflops(4.29),
        launch_overhead=8e-6,
        mn_block=128,
        k_block=16,
        grid_half=6.0,
        k_half=144.0,
        max_eff=0.90,
        spike_amp=0.015,
    )
    axpy = AxpyTimeModel(mem_bandwidth=from_gb_per_s(288.0), launch_overhead=8e-6)
    return MachineConfig(
        name="testbed_i",
        display_name="Testbed I (Tesla K40)",
        cpu="Intel Core i7-4820K @ 3.7GHz",
        gpu="NVIDIA Tesla K40 (FP64 1.43 TFlop/s, FP32 4.29 TFlop/s)",
        pcie="Gen2 x8",
        h2d=LinkDirectionConfig(
            latency=2.4e-6,
            bandwidth=from_gb_per_s(3.15),
            bid_slowdown=3.15 / 2.94,
        ),
        d2h=LinkDirectionConfig(
            latency=2.2e-6,
            bandwidth=from_gb_per_s(3.29),
            bid_slowdown=1.16,
        ),
        gpu_mem_bytes=gib(12),
        kernels=KernelModelSet(gemm_f64, gemm_f32, axpy),
        cpu_gemm_flops=9e10,
    )


def testbed_ii() -> MachineConfig:
    """Paper Testbed II: IBM host + NVIDIA Tesla V100, PCIe Gen3 x16.

    Table II: h2d 12.18 GB/s (9.59 bidirectional), d2h 12.98 GB/s (9.21
    bidirectional) => slowdowns 1.27 / 1.41; latencies ~2.5 us.
    V100 peaks: FP64 7.0 TFLOP/s, FP32 14.0 TFLOP/s, 16 GB.  The paper
    notes cublas gemm performance 'spikes' on this GPU (Section V-C),
    modeled by a larger wobble amplitude.
    """
    gemm_f64 = GemmTimeModel(
        peak_flops=from_tflops(7.0),
        launch_overhead=5e-6,
        mn_block=64,
        k_block=16,
        grid_half=20.0,
        k_half=110.0,
        max_eff=0.94,
        spike_amp=0.06,
    )
    gemm_f32 = GemmTimeModel(
        peak_flops=from_tflops(14.0),
        launch_overhead=5e-6,
        mn_block=64,
        k_block=16,
        grid_half=20.0,
        k_half=128.0,
        max_eff=0.92,
        spike_amp=0.06,
    )
    axpy = AxpyTimeModel(mem_bandwidth=from_gb_per_s(900.0), launch_overhead=5e-6)
    return MachineConfig(
        name="testbed_ii",
        display_name="Testbed II (Tesla V100)",
        cpu="IBM POWER9 @ 3.8GHz",
        gpu="NVIDIA Tesla V100 (FP64 7.0 TFlop/s, FP32 14.0 TFlop/s)",
        pcie="Gen3 x16",
        h2d=LinkDirectionConfig(
            latency=2.5e-6,
            bandwidth=from_gb_per_s(12.18),
            bid_slowdown=1.27,
        ),
        d2h=LinkDirectionConfig(
            latency=2.5e-6,
            bandwidth=from_gb_per_s(12.98),
            bid_slowdown=1.41,
        ),
        gpu_mem_bytes=gib(16),
        kernels=KernelModelSet(gemm_f64, gemm_f32, axpy),
        cpu_gemm_flops=4.5e11,
    )


def custom_machine(
    name: str = "custom",
    h2d_gb: float = 8.0,
    d2h_gb: float = 8.0,
    latency: float = 5e-6,
    sl_h2d: float = 1.2,
    sl_d2h: float = 1.3,
    dgemm_tflops: float = 4.0,
    sgemm_tflops: float = 8.0,
    mem_gb: float = 8.0,
    dev_mem_gbps: float = 400.0,
    noise_sigma: float = 0.0,
    spike_amp: float = 0.0,
    grid_half: float = 12.0,
    launch_overhead: float = 5e-6,
) -> MachineConfig:
    """A fully parameterized machine, mainly for tests and what-if runs."""
    gemm_f64 = GemmTimeModel(
        peak_flops=from_tflops(dgemm_tflops),
        launch_overhead=launch_overhead,
        grid_half=grid_half,
        spike_amp=spike_amp,
    )
    gemm_f32 = GemmTimeModel(
        peak_flops=from_tflops(sgemm_tflops),
        launch_overhead=launch_overhead,
        grid_half=grid_half,
        spike_amp=spike_amp,
    )
    axpy = AxpyTimeModel(
        mem_bandwidth=from_gb_per_s(dev_mem_gbps), launch_overhead=launch_overhead
    )
    return MachineConfig(
        name=name,
        display_name=name,
        cpu="synthetic host",
        gpu="synthetic GPU",
        pcie="synthetic",
        h2d=LinkDirectionConfig(latency, from_gb_per_s(h2d_gb), sl_h2d),
        d2h=LinkDirectionConfig(latency, from_gb_per_s(d2h_gb), sl_d2h),
        gpu_mem_bytes=gib(mem_gb),
        kernels=KernelModelSet(gemm_f64, gemm_f32, axpy),
        noise_sigma=noise_sigma,
    )


TESTBEDS: Dict[str, MachineConfig] = {}


def get_testbed(name: str) -> MachineConfig:
    """Look up one of the paper testbeds by name ('testbed_i'/'testbed_ii')."""
    if not TESTBEDS:
        TESTBEDS["testbed_i"] = testbed_i()
        TESTBEDS["testbed_ii"] = testbed_ii()
    try:
        return TESTBEDS[name]
    except KeyError:
        raise KeyError(
            f"unknown testbed {name!r}; available: {sorted(TESTBEDS)}"
        ) from None
