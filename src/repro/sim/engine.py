"""Discrete-event simulation core.

A :class:`Simulator` owns a virtual clock and an event heap.  Components
schedule callbacks at absolute or relative virtual times; running the
simulator pops events in time order (FIFO among equal timestamps) and
invokes them.  Events can be cancelled, which is how the duplex link
re-plans in-flight transfers when contention changes.

Hot-path notes: the heap stores ``(time, seq, event)`` tuples rather
than the event handles themselves, so heap sifts compare tuples at C
speed instead of dispatching ``ScheduledEvent.__lt__``; cancellation
stays O(1) (a flag on the handle, checked lazily at pop time).  The
``(time, seq)`` ordering — and therefore every observable firing
order — is identical to the historical object-heap implementation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


class ScheduledEvent:
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.9f} seq={self.seq} {state}>"


#: One heap entry: (time, seq, handle).  seq values are unique, so tuple
#: comparison never reaches the (uncomparable-by-design) handle.
_HeapEntry = Tuple[float, int, ScheduledEvent]


class Simulator:
    """Virtual-time event loop.

    The clock only moves forward, and only while :meth:`run` (or one of
    its bounded variants) is executing.  Determinism: two events at the
    same timestamp fire in scheduling order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[_HeapEntry] = []
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, callback)
        heappush(self._heap, (time, seq, ev))
        return ev

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, callback)
        heappush(self._heap, (time, seq, ev))
        return ev

    def _pop_next(self) -> Optional[ScheduledEvent]:
        heap = self._heap
        while heap:
            ev = heappop(heap)[2]
            if not ev.cancelled:
                return ev
        return None

    def run(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain.  Returns the number fired.

        ``max_events`` is a runaway guard: a cycle of self-rescheduling
        events raises instead of hanging forever.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        heap = self._heap
        try:
            while heap:
                time, _seq, ev = heappop(heap)
                if ev.cancelled:
                    continue
                self._now = time
                ev.callback()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events; "
                        "likely a scheduling cycle"
                    )
        finally:
            self._running = False
        return fired

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> int:
        """Run until ``predicate()`` is true or no events remain."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        heap = self._heap
        try:
            while not predicate():
                while heap:
                    entry = heappop(heap)
                    if not entry[2].cancelled:
                        break
                else:
                    break
                self._now = entry[0]
                entry[2].callback()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events"
                    )
        finally:
            self._running = False
        return fired

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle.

        Amortized O(1): cancelled entries at the top of the heap are
        discarded on the way (they would be skipped at pop time anyway).
        """
        heap = self._heap
        while heap:
            if heap[0][2].cancelled:
                heappop(heap)
            else:
                return heap[0][0]
        return None

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (only valid when idle).

        Used by benchmark drivers to model host-side gaps between
        operations.
        """
        if self._running:
            raise SimulationError("cannot advance the clock during a run")
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        nxt = self.peek_next_time()
        if nxt is not None and nxt < time:
            raise SimulationError(
                f"cannot skip over a pending event at t={nxt}"
            )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.9f} pending={self.pending_events}>"
