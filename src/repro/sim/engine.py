"""Discrete-event simulation core.

A :class:`Simulator` owns a virtual clock and an event queue.
Components schedule callbacks at absolute or relative virtual times;
running the simulator pops events in time order (FIFO among equal
timestamps) and invokes them.  Events can be cancelled, which is how
the duplex link re-plans in-flight transfers when contention changes.

Two event schedulers are available behind one queue interface
(``push/pop/peek/pop_batch``):

* ``"calendar"`` (default) — a :class:`~repro.sim.calendar.CalendarQueue`
  with O(1) amortized enqueue/dequeue;
* ``"heap"`` — the historical binary heap, kept as the reference
  implementation for the equivalence suite.

Both order entries by the identical ``(time, seq)`` key, so every
observable firing order — and therefore every trace byte — is the same
under either scheduler.  ``use_scheduler("heap")`` swaps the default
for code (tests) that builds simulators indirectly.

Exact mode additionally drains all events at one timestamp in a single
batch (:meth:`Simulator.run`): a batch pop is one queue operation
instead of one per event, and FIFO order within the batch is preserved
because batches come out already sorted by ``seq``.

``Simulator(mode="fluid")`` enables the hybrid fluid-flow regime: a
component (the duplex link) may register *flows* — objects exposing
analytic completion times for a whole run of work — and the run loop
interleaves their completions with discrete events, firing whichever
comes first (ties go to the discrete event).  A collapsed run of k
transfers costs zero queue operations instead of ~3k.  Exact mode never
consults flows, so its hot loop pays nothing for the feature.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from .calendar import CalendarQueue


class ScheduledEvent:
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.9f} seq={self.seq} {state}>"


#: One queue entry: (time, seq, handle).  seq values are unique, so
#: tuple comparison never reaches the (uncomparable-by-design) handle.
_QueueEntry = Tuple[float, int, ScheduledEvent]


class _HeapQueue:
    """Binary-heap scheduler: the pre-calendar engine, verbatim.

    Kept as the reference implementation the equivalence suite compares
    the calendar queue against.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []

    def push(self, entry: _QueueEntry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> Optional[_QueueEntry]:
        heap = self._heap
        return heappop(heap) if heap else None

    def peek(self) -> Optional[_QueueEntry]:
        heap = self._heap
        return heap[0] if heap else None

    def pop_batch(self) -> List[_QueueEntry]:
        heap = self._heap
        if not heap:
            return []
        batch = [heappop(heap)]
        t0 = batch[0][0]
        while heap and heap[0][0] == t0:
            batch.append(heappop(heap))
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[_QueueEntry]:
        return iter(self._heap)


_SCHEDULERS = {"calendar": CalendarQueue, "heap": _HeapQueue}
_MODES = ("exact", "fluid")

_default_scheduler = "calendar"


def get_default_scheduler() -> str:
    """Scheduler used by ``Simulator()`` when none is requested."""
    return _default_scheduler


def set_default_scheduler(kind: str) -> None:
    """Set the process-wide default event scheduler."""
    global _default_scheduler
    if kind not in _SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {kind!r}; expected one of {sorted(_SCHEDULERS)}"
        )
    _default_scheduler = kind


@contextmanager
def use_scheduler(kind: str):
    """Temporarily swap the default scheduler (equivalence testing)."""
    previous = _default_scheduler
    set_default_scheduler(kind)
    try:
        yield
    finally:
        set_default_scheduler(previous)


class Simulator:
    """Virtual-time event loop.

    The clock only moves forward, and only while :meth:`run` (or one of
    its bounded variants) is executing.  Determinism: two events at the
    same timestamp fire in scheduling order.

    mode
        ``"exact"`` (default) fires every scheduled event; ``"fluid"``
        additionally lets components collapse event runs into analytic
        *flows* (see module docstring).
    scheduler
        ``"calendar"`` or ``"heap"``; None picks the process default.
    """

    def __init__(self, mode: str = "exact", scheduler: Optional[str] = None) -> None:
        if mode not in _MODES:
            raise SimulationError(
                f"unknown simulator mode {mode!r}; expected one of {_MODES}"
            )
        if scheduler is None:
            scheduler = _default_scheduler
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {sorted(_SCHEDULERS)}"
            )
        self.mode = mode
        self.scheduler = scheduler
        self._now = 0.0
        self._seq = 0
        self._queue = _SCHEDULERS[scheduler]()
        #: registered fluid flows (fluid mode only); duck-typed objects
        #: with .next_time, .pending and .fire()
        self._flows: list = []
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Scheduled, not-yet-cancelled events (incl. collapsed flows)."""
        count = sum(1 for entry in self._queue if not entry[2].cancelled)
        for flow in self._flows:
            count += flow.pending
        return count

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, callback)
        self._queue.push((time, seq, ev))
        return ev

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, callback)
        self._queue.push((time, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # fluid-flow registry
    # ------------------------------------------------------------------

    def register_flow(self, flow) -> None:
        """Register an analytic flow; its completions join the run loop."""
        self._flows.append(flow)

    def unregister_flow(self, flow) -> None:
        """Remove a flow (closed or bailed back to exact events)."""
        self._flows.remove(flow)

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def run(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain.  Returns the number fired.

        ``max_events`` is a runaway guard: a cycle of self-rescheduling
        events raises instead of hanging forever.
        """
        if self.mode != "exact" or self._flows:
            return self._run_fluid(None, max_events)
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        pop_batch = self._queue.pop_batch
        try:
            while True:
                batch = pop_batch()
                if not batch:
                    break
                # All entries share one timestamp and arrive sorted by
                # seq, so firing in order preserves FIFO exactly; any
                # events a callback schedules at this same timestamp
                # form the next (minimum-time) batch.
                self._now = batch[0][0]
                for entry in batch:
                    ev = entry[2]
                    if not ev.cancelled:
                        ev.callback()
                        fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events; "
                        "likely a scheduling cycle"
                    )
        finally:
            self._running = False
        return fired

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> int:
        """Run until ``predicate()`` is true or no events remain.

        Single-steps (no batch drain): the predicate must be observed
        between events at the same timestamp, exactly as historically.
        """
        if self.mode != "exact" or self._flows:
            return self._run_fluid(predicate, max_events)
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        pop = self._queue.pop
        try:
            while not predicate():
                entry = pop()
                while entry is not None and entry[2].cancelled:
                    entry = pop()
                if entry is None:
                    break
                self._now = entry[0]
                entry[2].callback()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events"
                    )
        finally:
            self._running = False
        return fired

    def run_done(self, handle, max_events: int = 50_000_000) -> int:
        """``run_until(lambda: handle.done)`` without the per-event
        closure call: the loop reads ``handle.done`` directly.

        ``handle`` is anything with a ``done`` attribute (e.g. a
        :class:`~repro.sim.stream.Operation`).  Event-for-event
        identical to the ``run_until`` formulation; it exists because
        stream synchronization is the hottest bounded-run call site.
        """
        if self.mode != "exact" or self._flows:
            return self._run_fluid(lambda: handle.done, max_events)
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        pop = self._queue.pop
        try:
            while not handle.done:
                entry = pop()
                while entry is not None and entry[2].cancelled:
                    entry = pop()
                if entry is None:
                    break
                self._now = entry[0]
                entry[2].callback()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events"
                    )
        finally:
            self._running = False
        return fired

    def run_to(self, time: float, max_events: int = 50_000_000) -> int:
        """Fire every event with timestamp <= ``time``, then set the
        clock to exactly ``time``.  Returns the number fired.

        The lock-step epoch barrier the cluster coordinator leans on:
        each node's simulator is driven to one shared instant before
        the router observes its backlog, so cross-node comparisons are
        always between clocks at the same virtual time.  Batch-drains
        exact mode like :meth:`run` (FIFO within a timestamp is
        preserved); fluid mode routes through the interleaved loop so
        flow completions inside the window fire too.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run to t={time} before now={self._now}"
            )
        if self.mode != "exact" or self._flows:
            def _past_window() -> bool:
                nxt = self.peek_next_time()
                return nxt is None or nxt > time
            fired = self._run_fluid(_past_window, max_events)
            self._now = time
            return fired
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        queue = self._queue
        try:
            while True:
                nxt: Optional[float] = None
                while True:
                    head = queue.peek()
                    if head is None:
                        break
                    if head[2].cancelled:
                        queue.pop()
                        continue
                    nxt = head[0]
                    break
                if nxt is None or nxt > time:
                    break
                batch = queue.pop_batch()
                self._now = batch[0][0]
                for entry in batch:
                    ev = entry[2]
                    if not ev.cancelled:
                        ev.callback()
                        fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events; "
                        "likely a scheduling cycle"
                    )
        finally:
            self._running = False
        self._now = time
        return fired

    def _run_fluid(self, predicate: Optional[Callable[[], bool]], max_events: int) -> int:
        """Interleave discrete events with analytic flow completions.

        The next thing to happen is the earlier of the queue head and
        the earliest registered flow completion; a tie goes to the
        discrete event (it carries an explicit seq, the flow does not).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        queue = self._queue
        flows = self._flows
        try:
            while predicate is None or not predicate():
                # A drained-or-empty queue is the steady state while
                # windows are open; len() is O(1) where peek is a
                # bucket scan, so gate the peek on it.  (A queue
                # holding only cancelled entries takes the peek path,
                # which discards them.)
                t_queue: Optional[float] = None
                if len(queue):
                    while True:
                        head = queue.peek()
                        if head is None:
                            break
                        if head[2].cancelled:
                            queue.pop()
                            continue
                        t_queue = head[0]
                        break
                if flows:
                    # Bulk pre-pass: while every open window is pure
                    # (no un-fired callbacks), completions strictly
                    # before the next side-effectful instant — the
                    # queue head or the earliest window close, whose
                    # close handler can bail a neighbouring window —
                    # are pure per-direction bookkeeping, so each link
                    # drains them in one pass instead of one loop trip
                    # per completion.  Ties and the closes themselves
                    # fall through to the exact single-step below.
                    pure = True
                    for flow in flows:
                        if not flow.pure:
                            pure = False
                            break
                    if pure:
                        limit = min(flow.ends[-1] for flow in flows)
                        if t_queue is not None and t_queue < limit:
                            limit = t_queue
                        drained = 0
                        for flow in flows:
                            t = flow.next_time
                            if t is not None and t < limit:
                                drained += flow.drain(limit)
                        if drained:
                            fired += drained
                            if fired > max_events:
                                raise SimulationError(
                                    f"event budget exhausted after "
                                    f"{max_events} events"
                                )
                            continue
                best_flow = None
                t_flow: Optional[float] = None
                for flow in flows:
                    t = flow.next_time
                    if t is not None and (t_flow is None or t < t_flow):
                        t_flow = t
                        best_flow = flow
                if t_flow is not None and (t_queue is None or t_flow < t_queue):
                    self._now = t_flow
                    best_flow.fire()
                elif t_queue is not None:
                    entry = queue.pop()
                    self._now = t_queue
                    entry[2].callback()
                else:
                    break
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"event budget exhausted after {max_events} events"
                    )
        finally:
            self._running = False
        return fired

    # ------------------------------------------------------------------
    # clock introspection
    # ------------------------------------------------------------------

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle.

        Amortized O(1): cancelled entries at the queue head are
        discarded on the way (they would be skipped at pop time
        anyway).  Includes registered flow completions.
        """
        queue = self._queue
        nxt: Optional[float] = None
        while True:
            head = queue.peek()
            if head is None:
                break
            if head[2].cancelled:
                queue.pop()
                continue
            nxt = head[0]
            break
        for flow in self._flows:
            t = flow.next_time
            if t is not None and (nxt is None or t < nxt):
                nxt = t
        return nxt

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (only valid when idle).

        Used by benchmark drivers to model host-side gaps between
        operations.
        """
        if self._running:
            raise SimulationError("cannot advance the clock during a run")
        if time < self._now:
            raise SimulationError(f"cannot move time backwards to {time}")
        nxt = self.peek_next_time()
        if nxt is not None and nxt < time:
            raise SimulationError(
                f"cannot skip over a pending event at t={nxt}"
            )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.9f} pending={self.pending_events} "
            f"mode={self.mode} scheduler={self.scheduler}>"
        )
