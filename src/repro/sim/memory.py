"""Host and device buffer abstractions.

Buffers support two data policies (DESIGN.md section 6):

* **compute mode** — the buffer carries a real numpy array; transfers
  and kernels move/compute actual values, so numerical results can be
  verified against the reference BLAS.
* **timing mode** — the buffer is metadata only (a byte count); the
  simulator produces timings for problem sizes whose data would be too
  large to materialize.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..units import dtype_size

_buffer_ids = itertools.count()


class HostArray:
    """A host-side operand: optionally backed by a real numpy array.

    The paper requires pinned host memory for async CUDA copies; the
    ``pinned`` flag exists so the backend can enforce the same rule.
    """

    __slots__ = ("shape", "dtype", "array", "pinned", "name")

    def __init__(
        self,
        shape: Tuple[int, ...],
        dtype,
        array: Optional[np.ndarray] = None,
        pinned: bool = True,
        name: str = "",
    ) -> None:
        self.shape = tuple(map(int, shape))
        self.dtype = np.dtype(dtype)
        if array is not None and tuple(array.shape) != self.shape:
            raise SimulationError(
                f"array shape {array.shape} != declared shape {self.shape}"
            )
        self.array = array
        self.pinned = pinned
        self.name = name or f"host{next(_buffer_ids)}"

    @classmethod
    def wrap(cls, array: np.ndarray, pinned: bool = True, name: str = "") -> "HostArray":
        """Wrap an existing numpy array (compute mode)."""
        return cls(array.shape, array.dtype, array=array, pinned=pinned, name=name)

    @classmethod
    def shadow(cls, shape: Tuple[int, ...], dtype, name: str = "") -> "HostArray":
        """A metadata-only host operand (timing mode)."""
        return cls(shape, dtype, array=None, name=name)

    @property
    def nbytes(self) -> int:
        n = dtype_size(self.dtype)
        for s in self.shape:
            n *= s
        return n

    @property
    def has_data(self) -> bool:
        return self.array is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "data" if self.has_data else "shadow"
        return f"<HostArray {self.name} {self.shape} {self.dtype} {mode}>"


class DeviceBuffer:
    """A slab of simulated GPU memory, optionally backed by an ndarray."""

    __slots__ = ("nbytes", "shape", "dtype", "array", "_name", "freed")

    def __init__(
        self,
        nbytes: int,
        shape: Optional[Tuple[int, ...]] = None,
        dtype=None,
        array: Optional[np.ndarray] = None,
        name: str = "",
    ) -> None:
        if nbytes < 0:
            raise SimulationError(f"negative buffer size: {nbytes}")
        self.nbytes = int(nbytes)
        self.shape = tuple(map(int, shape)) if shape is not None else None
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.array = array
        self._name = name
        self.freed = False

    @property
    def name(self) -> str:
        # Auto-names are assigned on first read (error messages and
        # repr only) rather than per allocation.
        n = self._name
        if not n:
            n = self._name = f"dev{next(_buffer_ids)}"
        return n

    @property
    def has_data(self) -> bool:
        return self.array is not None

    def check_alive(self) -> None:
        if self.freed:
            raise SimulationError(f"use-after-free of device buffer {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else "live"
        return f"<DeviceBuffer {self.name} {self.nbytes}B {state}>"
