"""Numpy reference implementations of the BLAS subset.

These are the numerical ground truth the tiled library is verified
against.  They compute in the operand dtype (as cuBLAS does), so
tolerances in :mod:`repro.blas.validation` are dtype-aware.
"""

from __future__ import annotations

import numpy as np

from ..errors import BlasError


def _check_dtype(*arrays: np.ndarray) -> np.dtype:
    dtypes = {a.dtype for a in arrays}
    if len(dtypes) != 1:
        raise BlasError(f"mixed operand dtypes: {sorted(str(d) for d in dtypes)}")
    dtype = dtypes.pop()
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise BlasError(f"unsupported dtype {dtype}")
    return dtype


def ref_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """``C = alpha * A @ B + beta * C`` (returns a new array)."""
    dtype = _check_dtype(a, b, c)
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise BlasError("gemm operands must be 2-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or c.shape != (m, n):
        raise BlasError(
            f"gemm shape mismatch: A {a.shape}, B {b.shape}, C {c.shape}"
        )
    alpha = dtype.type(alpha)
    beta = dtype.type(beta)
    return alpha * (a @ b) + beta * c


def ref_gemv(
    a: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """``y = alpha * A @ x + beta * y`` (returns a new array)."""
    dtype = _check_dtype(a, x, y)
    if a.ndim != 2 or x.ndim != 1 or y.ndim != 1:
        raise BlasError("gemv expects a matrix and two vectors")
    m, n = a.shape
    if x.shape != (n,) or y.shape != (m,):
        raise BlasError(
            f"gemv shape mismatch: A {a.shape}, x {x.shape}, y {y.shape}"
        )
    alpha = dtype.type(alpha)
    beta = dtype.type(beta)
    return alpha * (a @ x) + beta * y


def ref_syrk(
    a: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """``C = alpha * A @ A^T + beta * C`` (returns a new full symmetric
    array; BLAS syrk only touches one triangle — callers comparing
    against a lower-triangle result should mask accordingly)."""
    dtype = _check_dtype(a, c)
    if a.ndim != 2 or c.ndim != 2:
        raise BlasError("syrk operands must be 2-D")
    n = a.shape[0]
    if c.shape != (n, n):
        raise BlasError(f"syrk shape mismatch: A {a.shape}, C {c.shape}")
    alpha = dtype.type(alpha)
    beta = dtype.type(beta)
    return alpha * (a @ a.T) + beta * c


def ref_axpy(x: np.ndarray, y: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """``y = alpha * x + y`` (returns a new array)."""
    dtype = _check_dtype(x, y)
    if x.shape != y.shape or x.ndim != 1:
        raise BlasError(f"axpy shape mismatch: x {x.shape}, y {y.shape}")
    return dtype.type(alpha) * x + y
