"""Routine specifications: the routine-specific half of Table I.

A :class:`RoutineSpec` captures, for a BLAS routine, its level, problem
dimensions (``D1[, D2[, D3]]``), the operands with their shapes in terms
of those dimensions, and which operands are inputs (fetched, ``get_i``)
and outputs (written back, ``set_i``).  The data-specific half (actual
sizes, locations, dtype) lives in :mod:`repro.core.params`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..errors import BlasError


class OperandRole(enum.Enum):
    """Whether an operand is read, written, or both."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def is_input(self) -> bool:
        return self in (OperandRole.IN, OperandRole.INOUT)

    @property
    def is_output(self) -> bool:
        return self in (OperandRole.OUT, OperandRole.INOUT)


@dataclass(frozen=True)
class OperandSpec:
    """One operand of a routine, with shape expressed over (D1, D2, D3).

    ``shape`` maps the problem dims to the operand's (S1, S2); vectors
    use S2 = 1 and set ``vector=True`` (a 1-column *matrix* is still a
    matrix — vectorness is declared, not inferred).
    """

    name: str
    role: OperandRole
    shape: Callable[[Tuple[int, ...]], Tuple[int, int]]
    vector: bool = False
    #: Optional override for the number of tiles this operand splits
    #: into (e.g. a triangular operand only stores/moves its lower
    #: tiles).  Signature: (dims, t) -> count.  None = dense grid.
    tile_count: "Callable[[Tuple[int, ...], int], int] | None" = None

    def sizes(self, dims: Tuple[int, ...]) -> Tuple[int, int]:
        s1, s2 = self.shape(dims)
        if s1 <= 0 or s2 <= 0:
            raise BlasError(f"operand {self.name} has non-positive size {(s1, s2)}")
        return s1, s2

    def elements(self, dims: Tuple[int, ...]) -> int:
        s1, s2 = self.sizes(dims)
        return s1 * s2


@dataclass(frozen=True)
class RoutineSpec:
    """Full static description of a BLAS routine."""

    name: str
    level: int
    ndims: int
    operands: Tuple[OperandSpec, ...]
    flops: Callable[[Tuple[int, ...]], float]
    #: Optional override for the subkernel count under square tiling
    #: (e.g. syrk only computes the lower-triangular output tiles).
    #: Signature: (dims, t) -> count.  None = ceil-product over dims.
    subkernel_count: "Callable[[Tuple[int, ...], int], int] | None" = None

    @property
    def opd(self) -> int:
        """Number of operands (the paper's ``opd``)."""
        return len(self.operands)

    def check_dims(self, dims: Sequence[int]) -> Tuple[int, ...]:
        dims = tuple(int(d) for d in dims)
        if len(dims) != self.ndims:
            raise BlasError(
                f"{self.name} expects {self.ndims} dims, got {len(dims)}: {dims}"
            )
        if any(d <= 0 for d in dims):
            raise BlasError(f"{self.name} dims must be positive: {dims}")
        return dims

    def total_elements(self, dims: Sequence[int]) -> int:
        dims = self.check_dims(dims)
        return sum(op.elements(dims) for op in self.operands)

    def __reduce__(self):
        # Shape/flops lambdas don't pickle; specs are module singletons,
        # so serialize by name and rehydrate via the registry (keeps
        # problems picklable for the process-pool fan-out layer).
        return (get_routine, (self.name,))


# ---------------------------------------------------------------------------
# The three routine families the paper models (Section III-C): level-3
# gemm (square tiling over D1,D2,D3), level-2 gemv (D1,D2), level-1 axpy
# (D1 only).
# ---------------------------------------------------------------------------

GEMM = RoutineSpec(
    name="gemm",
    level=3,
    ndims=3,
    operands=(
        # C = alpha * A @ B + beta * C with A: M x K, B: K x N, C: M x N
        # and (D1, D2, D3) = (M, N, K).
        OperandSpec("A", OperandRole.IN, lambda d: (d[0], d[2])),
        OperandSpec("B", OperandRole.IN, lambda d: (d[2], d[1])),
        OperandSpec("C", OperandRole.INOUT, lambda d: (d[0], d[1])),
    ),
    flops=lambda d: 2.0 * d[0] * d[1] * d[2],
)

GEMV = RoutineSpec(
    name="gemv",
    level=2,
    ndims=2,
    operands=(
        # y = alpha * A @ x + beta * y with A: M x N, x: N, y: M
        # and (D1, D2) = (M, N).
        OperandSpec("A", OperandRole.IN, lambda d: (d[0], d[1])),
        OperandSpec("x", OperandRole.IN, lambda d: (d[1], 1), vector=True),
        OperandSpec("y", OperandRole.INOUT, lambda d: (d[0], 1), vector=True),
    ),
    flops=lambda d: 2.0 * d[0] * d[1],
)

AXPY = RoutineSpec(
    name="axpy",
    level=1,
    ndims=1,
    operands=(
        # y = alpha * x + y with (D1,) = (N,)
        OperandSpec("x", OperandRole.IN, lambda d: (d[0], 1), vector=True),
        OperandSpec("y", OperandRole.INOUT, lambda d: (d[0], 1), vector=True),
    ),
    flops=lambda d: 2.0 * d[0],
)

def _tri(n: int) -> int:
    """Tiles in the lower triangle (diagonal included) of an n x n grid."""
    return n * (n + 1) // 2


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


SYRK = RoutineSpec(
    name="syrk",
    level=3,
    ndims=2,
    operands=(
        # C = alpha * A @ A^T + beta * C with A: N x K, C: N x N
        # symmetric (lower triangle stored/moved); (D1, D2) = (N, K).
        OperandSpec("A", OperandRole.IN, lambda d: (d[0], d[1])),
        OperandSpec(
            "C", OperandRole.INOUT, lambda d: (d[0], d[0]),
            tile_count=lambda d, t: _tri(_ceil_div(d[0], t)),
        ),
    ),
    # Symmetry halves the work relative to the equivalent gemm.
    flops=lambda d: float(d[0]) * (d[0] + 1) * d[1],
    subkernel_count=lambda d, t: _tri(_ceil_div(d[0], t)) * _ceil_div(d[1], t),
)

ROUTINES: Dict[str, RoutineSpec] = {
    r.name: r for r in (GEMM, GEMV, AXPY, SYRK)
}


def get_routine(name: str) -> RoutineSpec:
    """Look up a routine spec by its BLAS name (without dtype prefix)."""
    key = name.lower()
    # Accept dtype-prefixed names like 'dgemm' / 'saxpy'.
    if key not in ROUTINES and key[0] in "sd" and key[1:] in ROUTINES:
        key = key[1:]
    try:
        return ROUTINES[key]
    except KeyError:
        raise BlasError(
            f"unknown routine {name!r}; available: {sorted(ROUTINES)}"
        ) from None
