"""Numerical validation helpers for tiled BLAS results.

Tiled execution changes summation order, so results differ from the
reference at the level of floating-point rounding.  Tolerances scale
with the reduction depth (K for gemm) and the dtype epsilon.
"""

from __future__ import annotations

import numpy as np

from ..errors import BlasError


def tolerance_for(dtype, reduction_depth: int = 1) -> float:
    """Relative tolerance for comparing tiled vs reference results.

    ~ sqrt(depth) * eps * safety, the standard backward-error scaling
    for reordered summation.
    """
    eps = float(np.finfo(np.dtype(dtype)).eps)
    depth = max(int(reduction_depth), 1)
    return 50.0 * eps * np.sqrt(depth)


def relative_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Max-norm relative error of ``result`` vs ``reference``."""
    if result.shape != reference.shape:
        raise BlasError(
            f"shape mismatch: {result.shape} vs {reference.shape}"
        )
    denom = float(np.max(np.abs(reference)))
    if denom == 0.0:
        return float(np.max(np.abs(result)))
    return float(np.max(np.abs(result - reference))) / denom


def assert_allclose_blas(
    result: np.ndarray,
    reference: np.ndarray,
    reduction_depth: int = 1,
    context: str = "",
) -> None:
    """Assert a tiled result matches the reference within tolerance."""
    tol = tolerance_for(reference.dtype, reduction_depth)
    err = relative_error(result, reference)
    if err > tol:
        raise AssertionError(
            f"BLAS result mismatch{' (' + context + ')' if context else ''}: "
            f"relative error {err:.3e} > tolerance {tol:.3e}"
        )
