"""BLAS routine metadata and numpy reference implementations.

This package defines what each supported routine *is* (dimensions,
operands, flop/byte counts, input/output roles — the routine-specific
half of the paper's Table I) and provides reference implementations used
to verify the tiled library numerically.
"""

from .spec import (
    OperandRole,
    OperandSpec,
    RoutineSpec,
    GEMM,
    GEMV,
    AXPY,
    SYRK,
    ROUTINES,
    get_routine,
)
from .reference import ref_gemm, ref_axpy, ref_gemv, ref_syrk
from .validation import assert_allclose_blas, relative_error, tolerance_for

__all__ = [
    "OperandRole",
    "OperandSpec",
    "RoutineSpec",
    "GEMM",
    "GEMV",
    "AXPY",
    "SYRK",
    "ROUTINES",
    "get_routine",
    "ref_gemm",
    "ref_axpy",
    "ref_gemv",
    "ref_syrk",
    "assert_allclose_blas",
    "relative_error",
    "tolerance_for",
]
