"""Unit helpers and dtype metadata.

The whole library computes in SI base units: seconds, bytes and
bytes/second.  GFLOP/s and GB/s appear only at the reporting layer, via
the converters defined here.
"""

from __future__ import annotations

import numpy as np

from .errors import BlasError

#: Bytes per element for the dtypes the BLAS subset supports.
DTYPE_SIZES = {
    np.dtype(np.float64): 8,
    np.dtype(np.float32): 4,
}

GIGA = 1e9
MEGA = 1e6
KILO = 1e3

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def dtype_size(dtype) -> int:
    """Return the element size in bytes for a supported dtype.

    Raises :class:`~repro.errors.BlasError` for unsupported dtypes so a
    typo fails loudly rather than producing nonsense byte counts.
    """
    key = np.dtype(dtype)
    try:
        return DTYPE_SIZES[key]
    except KeyError:
        raise BlasError(f"unsupported dtype: {dtype!r}") from None


def gflops(flops: float, seconds: float) -> float:
    """Convert a flop count and a duration to GFLOP/s."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds}")
    return flops / seconds / GIGA


def gb_per_s(nbytes: float, seconds: float) -> float:
    """Convert a byte count and a duration to GB/s."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds}")
    return nbytes / seconds / GIGA


def from_gb_per_s(rate_gb: float) -> float:
    """Convert GB/s to bytes/second."""
    return rate_gb * GIGA


def from_tflops(rate_tf: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return rate_tf * 1e12


def mib(n: float) -> int:
    """``n`` MiB in bytes."""
    return int(n * (1 << 20))


def gib(n: float) -> int:
    """``n`` GiB in bytes."""
    return int(n * (1 << 30))
