"""CoCoPeLia reproduction: overlap prediction for GPU BLAS offload.

Reproduces Anastasiadis et al., "CoCoPeLia: Communication-Computation
Overlap Prediction for Efficient Linear Algebra on GPUs" (ISPASS 2021)
on a discrete-event simulated GPU substrate.

Quickstart::

    from repro import testbed_ii, deploy_quick, CoCoPeLiaLibrary

    machine = testbed_ii()                  # simulated V100 testbed
    models = deploy_quick(machine)          # micro-benchmark + fit
    lib = CoCoPeLiaLibrary(machine, models)
    result = lib.gemm(8192, 8192, 8192)     # auto tile selection
    print(result.describe())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    CoCoProblem,
    Loc,
    MachineModels,
    axpy_problem,
    gemm_problem,
    gemv_problem,
    predict,
    select_tile,
)
from .deploy import DeploymentConfig, deploy, deploy_or_load
from .runtime import CoCoPeLiaLibrary, RunResult
from .baselines import (
    BlasXLibrary,
    CublasXtLibrary,
    SerialOffloadLibrary,
    UnifiedMemoryLibrary,
)
from .sim import GpuDevice, MachineConfig, get_testbed, testbed_i, testbed_ii

__version__ = "1.0.0"


def deploy_quick(machine: MachineConfig) -> MachineModels:
    """Deploy with the reduced benchmark sweeps (seconds, not minutes)."""
    return deploy(machine, DeploymentConfig.quick())


__all__ = [
    "CoCoProblem",
    "Loc",
    "MachineModels",
    "axpy_problem",
    "gemm_problem",
    "gemv_problem",
    "predict",
    "select_tile",
    "DeploymentConfig",
    "deploy",
    "deploy_or_load",
    "deploy_quick",
    "CoCoPeLiaLibrary",
    "RunResult",
    "BlasXLibrary",
    "CublasXtLibrary",
    "SerialOffloadLibrary",
    "UnifiedMemoryLibrary",
    "GpuDevice",
    "MachineConfig",
    "get_testbed",
    "testbed_i",
    "testbed_ii",
    "__version__",
]
