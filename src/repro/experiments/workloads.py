"""Validation and evaluation sets (paper Section V-B and V-E).

The paper's sets:

* daxpy: ``N = {8, 64, 128, 256} * 2^20`` for all 3 location
  combinations with at least one operand on the host;
* gemm location/size: square ``M = N = K = {4, 8, 12, 16} * 2^10`` for
  all 7 location combinations;
* gemm shape: equal-volume fat-by-thin (``M = N = K * r^2``) and
  thin-by-fat (``M = N = K / r^2``) problems, ``r in {3, 4, 5}``, full
  offload;
* evaluation extension (V-E): 25 square sizes 4K..16K step 0.5K, 11
  daxpy sizes.

Each set exists at three scales.  ``quick`` shrinks sizes (preserving
the transfer/compute balance regimes) so the full harness runs in
minutes through the Python discrete-event simulator; ``tiny`` is for
unit tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..core.params import CoCoProblem, Loc, axpy_problem, gemm_problem
from ..errors import ReproError

SCALES = ("tiny", "quick", "paper")


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ReproError(f"unknown scale {scale!r}; valid: {SCALES}")


# ---------------------------------------------------------------------------
# location combinations
# ---------------------------------------------------------------------------

def location_combos(n_operands: int) -> List[Tuple[Loc, ...]]:
    """All 2^n - 1 combinations with at least one host-resident operand.

    The all-on-GPU case is excluded (paper: "there is no overlap").
    """
    combos = []
    for bits in itertools.product((Loc.HOST, Loc.DEVICE), repeat=n_operands):
        if any(loc is Loc.HOST for loc in bits):
            combos.append(bits)
    return combos


def full_offload(n_operands: int) -> Tuple[Loc, ...]:
    return tuple(Loc.HOST for _ in range(n_operands))


def is_full_offload(problem: CoCoProblem) -> bool:
    return all(op.loc is Loc.HOST for op in problem.operands)


# ---------------------------------------------------------------------------
# size tables per scale
# ---------------------------------------------------------------------------

_DAXPY_SIZES = {
    "tiny": [1 << 20],
    "quick": [4 << 20, 16 << 20, 32 << 20, 64 << 20],
    "paper": [8 << 20, 64 << 20, 128 << 20, 256 << 20],
}

_GEMM_SQUARES = {
    "tiny": [1024],
    "quick": [2048, 3072, 4096, 6144],
    "paper": [4096, 8192, 12288, 16384],
}

#: Cube roots of the equal-volume shape-set volumes.
_SHAPE_VOLUME_EDGE = {
    "tiny": [1024],
    "quick": [3072],
    "paper": [8192],
}

_SHAPE_RATIOS = {
    "tiny": [2],
    "quick": [2, 3],
    "paper": [3, 4, 5],
}

#: Fig. 1 problem sizes (dgemm tiling-size sweep).  The interior
#: performance maximum the paper highlights only exists once the
#: problem is several times the machine's compute/transfer balance
#: tile (~4K on the simulated V100), so even the quick scale uses
#: large problems here.
_FIG1_SIZES = {
    "tiny": [1024],
    "quick": [8192, 12288],
    "paper": [8192, 16384],
}

#: Evaluation-extension square sizes (V-E: 25 sizes 4K..16K step 0.5K).
_EVAL_SQUARES = {
    "tiny": [1024, 1536],
    "quick": [2048, 2560, 3072, 3584, 4096, 5120, 6144],
    "paper": [4096 + 512 * i for i in range(25)],
}

_EVAL_DAXPY = {
    "tiny": [1 << 20, 2 << 20],
    "quick": [(4 + 8 * i) << 20 for i in range(6)],
    "paper": [(1 << 30) + i * (96 << 20) for i in range(11)],
}


def _round_dim(x: float, multiple: int = 128, floor: int = 256) -> int:
    return max(int(round(x / multiple)) * multiple, floor)


def shape_dims(volume_edge: int, ratio: int, fat_by_thin: bool) -> Tuple[int, int, int]:
    """Dims of an equal-volume non-square gemm problem.

    fat_by_thin: M = N = K * r^2 (large output, short inner dim) —
    transfer-heavy.  thin_by_fat: M = N = K / r^2 (small output, long
    inner dim).  Volume ~ volume_edge^3 in both cases.
    """
    v = float(volume_edge) ** 3
    r2 = float(ratio * ratio)
    if fat_by_thin:
        # Solve K^3 * r^4 = V  =>  K = (V / r^4)^(1/3), M = N = K r^2.
        k = (v / (r2 * r2)) ** (1.0 / 3.0)
        m = k * r2
    else:
        # M = N = K / r^2: K^3 / r^4 = V => K = (V r^4)^(1/3).
        k = (v * r2 * r2) ** (1.0 / 3.0)
        m = k / r2
    return _round_dim(m), _round_dim(m), _round_dim(k)


# ---------------------------------------------------------------------------
# validation sets (Section V-B)
# ---------------------------------------------------------------------------

def daxpy_validation_set(scale: str = "quick") -> List[CoCoProblem]:
    """daxpy sizes x all 3 location combinations."""
    _check_scale(scale)
    problems = []
    for n in _DAXPY_SIZES[scale]:
        for loc_x, loc_y in location_combos(2):
            problems.append(axpy_problem(n, np.float64, loc_x, loc_y))
    return problems


def gemm_location_validation_set(scale: str = "quick",
                                 dtype=np.float64) -> List[CoCoProblem]:
    """Square gemm sizes x all 7 location combinations."""
    _check_scale(scale)
    problems = []
    for d in _GEMM_SQUARES[scale]:
        for locs in location_combos(3):
            problems.append(gemm_problem(d, d, d, dtype, *locs))
    return problems


def gemm_shape_validation_set(scale: str = "quick",
                              dtype=np.float64) -> List[CoCoProblem]:
    """Equal-volume fat-by-thin and thin-by-fat problems, full offload."""
    _check_scale(scale)
    problems = []
    for edge in _SHAPE_VOLUME_EDGE[scale]:
        for ratio in _SHAPE_RATIOS[scale]:
            for fat in (True, False):
                m, n, k = shape_dims(edge, ratio, fat)
                problems.append(gemm_problem(m, n, k, dtype))
    return problems


def gemm_validation_set(scale: str = "quick",
                        dtype=np.float64) -> List[CoCoProblem]:
    """The full Section V-B gemm validation set for one dtype."""
    return (gemm_location_validation_set(scale, dtype)
            + gemm_shape_validation_set(scale, dtype))


# ---------------------------------------------------------------------------
# evaluation sets (Section V-E)
# ---------------------------------------------------------------------------

def gemm_evaluation_set(scale: str = "quick",
                        dtype=np.float64) -> List[CoCoProblem]:
    """The extended V-E set: more square sizes x locations + shapes."""
    _check_scale(scale)
    problems = []
    for d in _EVAL_SQUARES[scale]:
        for locs in location_combos(3):
            problems.append(gemm_problem(d, d, d, dtype, *locs))
    problems += gemm_shape_validation_set(scale, dtype)
    return problems


def daxpy_evaluation_set(scale: str = "quick") -> List[CoCoProblem]:
    _check_scale(scale)
    problems = []
    for n in _EVAL_DAXPY[scale]:
        for loc_x, loc_y in location_combos(2):
            problems.append(axpy_problem(n, np.float64, loc_x, loc_y))
    return problems


def fig1_sizes(scale: str = "quick") -> List[int]:
    _check_scale(scale)
    return list(_FIG1_SIZES[scale])


def fig1_tile_sweep(size: int, scale: str = "quick") -> List[int]:
    """Fig. 1 sweeps all the way to ``T = size`` (the no-overlap end),
    unlike the validation sweeps which stop at min(D)/1.5."""
    _check_scale(scale)
    if scale == "paper":
        step, lo = 1024, 1024
    elif scale == "quick":
        step, lo = 512, 512
    else:
        step, lo = 256, 256
    sweep = list(range(lo, size + 1, step))
    if size not in sweep:
        sweep.append(size)
    return sweep


def tile_sweep(problem: CoCoProblem, scale: str = "quick") -> List[int]:
    """Tile sizes to measure for a problem (paper: 1024..16384 step 256
    with T <= min(D)/1.5; quick scale coarsens the sweep)."""
    _check_scale(scale)
    if scale == "paper":
        step, lo = 256, 1024
    elif scale == "quick":
        step, lo = 512, 512
    else:
        step, lo = 256, 256
    limit = int(problem.min_dim() / 1.5)
    sweep = [t for t in range(lo, limit + 1, step)]
    if not sweep:
        sweep = [max(problem.min_dim() // 2, 128)]
    return sweep
