"""Table IV: mean percentile improvement of CoCoPeLia over the best
competing library, split into full- and partial-offload cases.

For gemm the competitors are the cuBLASXt-like library (best of its
tile sweep) and the BLASX-like library; for daxpy the competitor is the
unified-memory-with-prefetch implementation, as in the paper's
Section V-E.  Improvements are geometric means of per-problem time
ratios, reported as percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BlasXLibrary, CublasXtLibrary, UnifiedMemoryLibrary
from ..core.params import CoCoProblem
from ..runtime import CoCoPeLiaLibrary
from ..sim.machine import MachineConfig
from . import workloads
from .fig7_performance import XT_SWEEP
from .harness import models_for, run_axpy, run_gemm, testbeds
from .metrics import geomean_improvement_pct, speedup
from .report import format_table


@dataclass
class Table4Cell:
    machine: str
    routine: str
    offload: str  # 'full' | 'partial'
    improvement_pct: float
    n_problems: int


@dataclass
class Table4Result:
    scale: str
    cells: List[Table4Cell] = field(default_factory=list)

    def get(self, machine: str, routine: str, offload: str) -> Table4Cell:
        for c in self.cells:
            if (c.machine, c.routine, c.offload) == (machine, routine, offload):
                return c
        raise KeyError((machine, routine, offload))


def _best_competitor_gemm(problem: CoCoProblem, xt: CublasXtLibrary,
                          bx: BlasXLibrary, xt_tiles: Sequence[int]) -> float:
    best = run_gemm(bx, problem).seconds
    for t in xt_tiles:
        if t > problem.min_dim():
            continue
        best = min(best, run_gemm(xt, problem, tile_size=t).seconds)
    return best


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None,
        dtypes: Sequence = (np.float64, np.float32)) -> Table4Result:
    machines = list(machines) if machines is not None else testbeds()
    result = Table4Result(scale=scale)
    xt_tiles = XT_SWEEP[scale]
    for machine in machines:
        models = models_for(machine, scale)
        cc = CoCoPeLiaLibrary(machine, models)
        xt = CublasXtLibrary(machine)
        bx = BlasXLibrary(machine)
        um = UnifiedMemoryLibrary(machine)
        # --- gemm ---
        for dtype in dtypes:
            prefix = "d" if np.dtype(dtype).itemsize == 8 else "s"
            ratios: Dict[str, List[float]] = {"full": [], "partial": []}
            for problem in workloads.gemm_evaluation_set(scale, dtype):
                t_cc = run_gemm(cc, problem).seconds
                t_other = _best_competitor_gemm(problem, xt, bx, xt_tiles)
                bucket = ("full" if workloads.is_full_offload(problem)
                          else "partial")
                ratios[bucket].append(speedup(t_other, t_cc))
            for offload, vals in ratios.items():
                if not vals:
                    continue
                result.cells.append(Table4Cell(
                    machine=machine.name,
                    routine=f"{prefix}gemm",
                    offload=offload,
                    improvement_pct=geomean_improvement_pct(vals),
                    n_problems=len(vals),
                ))
        # --- daxpy vs unified memory ---
        ratios = {"full": [], "partial": []}
        for problem in workloads.daxpy_evaluation_set(scale):
            t_cc = run_axpy(cc, problem).seconds
            t_um = run_axpy(um, problem).seconds
            bucket = ("full" if workloads.is_full_offload(problem)
                      else "partial")
            ratios[bucket].append(speedup(t_um, t_cc))
        for offload, vals in ratios.items():
            if not vals:
                continue
            result.cells.append(Table4Cell(
                machine=machine.name,
                routine="daxpy",
                offload=offload,
                improvement_pct=geomean_improvement_pct(vals),
                n_problems=len(vals),
            ))
    return result


def render(result: Table4Result) -> str:
    rows = [
        [c.machine, c.routine, c.offload, round(c.improvement_pct, 1),
         c.n_problems]
        for c in result.cells
    ]
    return format_table(
        ["machine", "routine", "offload", "improvement %", "n"],
        rows,
        title="Table IV: geomean improvement of CoCoPeLia over the best "
              "competitor",
    )
