"""Table IV: mean percentile improvement of CoCoPeLia over the best
competing library, split into full- and partial-offload cases.

For gemm the competitors are the cuBLASXt-like library (best of its
tile sweep) and the BLASX-like library; for daxpy the competitor is the
unified-memory-with-prefetch implementation, as in the paper's
Section V-E.  Improvements are geometric means of per-problem time
ratios, reported as percentages.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BlasXLibrary, CublasXtLibrary, UnifiedMemoryLibrary
from ..core.params import CoCoProblem
from ..parallel import ParallelConfig, pmap, task_seed
from ..runtime import CoCoPeLiaLibrary
from ..sim.engine import use_scheduler
from ..sim.machine import MachineConfig
from . import workloads
from .fig7_performance import XT_SWEEP
from .harness import (models_for, prime_worker, run_axpy, run_gemm,
                      testbeds, warm_payload)
from .metrics import geomean_improvement_pct, speedup
from .report import format_table

#: Root of the per-problem seed derivation (distinct from fig7's so
#: the two sweeps never share noise streams).
_SEED_ROOT = 7004


@dataclass
class Table4Cell:
    machine: str
    routine: str
    offload: str  # 'full' | 'partial'
    improvement_pct: float
    n_problems: int


@dataclass
class Table4Result:
    scale: str
    cells: List[Table4Cell] = field(default_factory=list)

    def get(self, machine: str, routine: str, offload: str) -> Table4Cell:
        for c in self.cells:
            if (c.machine, c.routine, c.offload) == (machine, routine, offload):
                return c
        raise KeyError((machine, routine, offload))


def _best_competitor_gemm(problem: CoCoProblem, xt: CublasXtLibrary,
                          bx: BlasXLibrary, xt_tiles: Sequence[int]) -> float:
    best = run_gemm(bx, problem).seconds
    for t in xt_tiles:
        if t > problem.min_dim():
            continue
        best = min(best, run_gemm(xt, problem, tile_size=t).seconds)
    return best


def _table4_task(machine: MachineConfig, scale: str, problem: CoCoProblem,
                 xt_tiles: Sequence[int], seed_base: int,
                 scheduler: Optional[str] = None, sim_mode: str = "exact"
                 ) -> Tuple[float, float]:
    """(t_CoCoPeLia, t_best_competitor) for one problem, self-contained.

    gemm problems compete against the best of cuBLASXt's sweep and
    BLASX; axpy problems against unified memory, as in Section V-E.
    Libraries are rebuilt per task with grid-derived seeds, so the
    measurement is execution-order independent.  ``scheduler`` /
    ``sim_mode`` select the simulator-core implementation for the
    CoCoPeLia runs; the defaults are the historical configuration.
    """
    models = models_for(machine, scale)
    with (use_scheduler(scheduler) if scheduler else nullcontext()):
        return _table4_point(machine, problem, xt_tiles, seed_base,
                             models, sim_mode)


def _table4_point(machine: MachineConfig, problem: CoCoProblem,
                  xt_tiles: Sequence[int], seed_base: int, models,
                  sim_mode: str) -> Tuple[float, float]:
    cc = CoCoPeLiaLibrary(machine, models, seed=task_seed(seed_base, "cc"),
                          sim_mode=sim_mode)
    if problem.routine.name == "axpy":
        um = UnifiedMemoryLibrary(machine, seed=task_seed(seed_base, "um"))
        return run_axpy(cc, problem).seconds, run_axpy(um, problem).seconds
    xt = CublasXtLibrary(machine, seed=task_seed(seed_base, "xt"))
    bx = BlasXLibrary(machine, seed=task_seed(seed_base, "bx"))
    return (run_gemm(cc, problem).seconds,
            _best_competitor_gemm(problem, xt, bx, xt_tiles))


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None,
        dtypes: Sequence = (np.float64, np.float32),
        parallel=None, scheduler: Optional[str] = None,
        sim_mode: str = "exact") -> Table4Result:
    machines = list(machines) if machines is not None else testbeds()
    result = Table4Result(scale=scale)
    xt_tiles = XT_SWEEP[scale]
    tasks = []
    meta: List[Tuple[str, str, str]] = []  # (machine, routine, bucket)
    for machine in machines:
        for dtype in dtypes:
            prefix = "d" if np.dtype(dtype).itemsize == 8 else "s"
            for i, problem in enumerate(
                    workloads.gemm_evaluation_set(scale, dtype)):
                seed_base = task_seed(_SEED_ROOT, machine.name,
                                      f"{prefix}gemm", i)
                tasks.append((machine, scale, problem, xt_tiles,
                              seed_base, scheduler, sim_mode))
                meta.append((machine.name, f"{prefix}gemm",
                             "full" if workloads.is_full_offload(problem)
                             else "partial"))
        for i, problem in enumerate(workloads.daxpy_evaluation_set(scale)):
            seed_base = task_seed(_SEED_ROOT, machine.name, "daxpy", i)
            tasks.append((machine, scale, problem, xt_tiles,
                          seed_base, scheduler, sim_mode))
            meta.append((machine.name, "daxpy",
                         "full" if workloads.is_full_offload(problem)
                         else "partial"))
    cfg = ParallelConfig.resolve(parallel)
    payload = warm_payload(machines, scale) if cfg.enabled else []
    times = pmap(_table4_task, tasks, parallel=cfg,
                 initializer=prime_worker, initargs=(payload,))

    # Aggregate per (machine, routine) in submission order, preserving
    # the cell ordering the serial implementation produced.
    ratios: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for (machine_name, routine, bucket), (t_cc, t_other) in zip(meta, times):
        cell = ratios.setdefault((machine_name, routine),
                                 {"full": [], "partial": []})
        cell[bucket].append(speedup(t_other, t_cc))
    for (machine_name, routine), buckets in ratios.items():
        for offload, vals in buckets.items():
            if not vals:
                continue
            result.cells.append(Table4Cell(
                machine=machine_name,
                routine=routine,
                offload=offload,
                improvement_pct=geomean_improvement_pct(vals),
                n_problems=len(vals),
            ))
    return result


def render(result: Table4Result) -> str:
    rows = [
        [c.machine, c.routine, c.offload, round(c.improvement_pct, 1),
         c.n_problems]
        for c in result.cells
    ]
    return format_table(
        ["machine", "routine", "offload", "improvement %", "n"],
        rows,
        title="Table IV: geomean improvement of CoCoPeLia over the best "
              "competitor",
    )
