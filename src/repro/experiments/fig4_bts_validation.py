"""Fig. 4: prediction-error distributions of the BTS model vs CSO.

The BTS model (Eq. 4) targets problems *without* inter-subkernel data
reuse: daxpy (no reuse exists) and the cuBLASXt-like gemm (the library
does not reuse input tiles).  For every validation problem and every
benchmarked tile size valid for it, the offload is measured and both
models' relative errors ``e%`` are recorded; the paper summarizes the
distributions as violin plots, reproduced here as quartile summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import CublasXtLibrary
from ..core.registry import predict
from ..core.select import candidate_tiles
from ..runtime import CoCoPeLiaLibrary
from ..sim.machine import MachineConfig
from . import workloads
from .harness import models_for, run_axpy, run_gemm, testbeds
from .metrics import ErrorDistribution, percent_error
from .report import format_table

#: Models compared in Fig. 4.
MODELS = ("bts", "cso")


@dataclass
class Fig4Result:
    scale: str
    #: (machine, routine, model) -> error samples in percent
    samples: Dict[Tuple[str, str, str], List[float]] = field(
        default_factory=dict)

    def distributions(self) -> List[ErrorDistribution]:
        return [
            ErrorDistribution.from_samples(
                f"{machine}/{routine}/{model}", vals
            )
            for (machine, routine, model), vals in sorted(self.samples.items())
        ]


def _subsample(tiles: Sequence[int], limit: int) -> List[int]:
    tiles = list(tiles)
    if len(tiles) <= limit:
        return tiles
    idx = np.linspace(0, len(tiles) - 1, limit).round().astype(int)
    return [tiles[i] for i in sorted(set(idx.tolist()))]


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None,
        tiles_per_problem: int = 4) -> Fig4Result:
    machines = list(machines) if machines is not None else testbeds()
    result = Fig4Result(scale=scale)
    for machine in machines:
        models = models_for(machine, scale)
        # --- daxpy, measured on the CoCoPeLia chunked implementation ---
        cc = CoCoPeLiaLibrary(machine, models)
        for problem in workloads.daxpy_validation_set(scale):
            tiles = _subsample(candidate_tiles(problem, models, clamped=False),
                               tiles_per_problem)
            for t in tiles:
                measured = run_axpy(cc, problem, tile_size=t).seconds
                for model in MODELS:
                    err = percent_error(
                        predict(model, problem, t, models), measured
                    )
                    result.samples.setdefault(
                        (machine.name, "daxpy", model), []
                    ).append(err)
        # --- gemm, measured on the cuBLASXt-like library (no reuse) ---
        xt = CublasXtLibrary(machine)
        for dtype, prefix in ((np.float64, "d"), (np.float32, "s")):
            for problem in workloads.gemm_validation_set(scale, dtype):
                tiles = _subsample(candidate_tiles(problem, models, clamped=False),
                                   tiles_per_problem)
                for t in tiles:
                    measured = run_gemm(xt, problem, tile_size=t).seconds
                    for model in MODELS:
                        err = percent_error(
                            predict(model, problem, t, models), measured
                        )
                        result.samples.setdefault(
                            (machine.name, f"{prefix}gemm", model), []
                        ).append(err)
    return result


def render(result: Fig4Result) -> str:
    rows = []
    for dist in result.distributions():
        rows.append([
            dist.label, dist.n, round(dist.median, 1), round(dist.mean, 1),
            round(dist.q1, 1), round(dist.q3, 1),
            round(dist.min, 1), round(dist.max, 1),
        ])
    return format_table(
        ["machine/routine/model", "n", "median e%", "mean e%", "q1", "q3",
         "min", "max"],
        rows,
        title="Fig. 4: BTS vs CSO relative prediction error (violin summary)",
    )
