"""Plain-text rendering of experiment results.

The paper reports through figures and tables; this substrate renders
the same content as aligned text tables and ASCII series so every
benchmark can print its reproduction to stdout / the bench log.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def ascii_series(xs: Sequence[float], ys: Sequence[float],
                 width: int = 60, height: int = 12,
                 title: Optional[str] = None,
                 marker: str = "*") -> str:
    """A rough ASCII scatter/line chart (for tile-sweep 'figures')."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("series must be equal-length and non-empty")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x0) / xspan * (width - 1))
        row = height - 1 - int((y - y0) / yspan * (height - 1))
        grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:12.4g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{y0:12.4g} +" + "".join(grid[-1]))
    lines.append(" " * 14 + f"{x0:<12.4g}" + " " * max(width - 24, 0)
                 + f"{x1:>12.4g}")
    return "\n".join(lines)


def bullet_list(items: Sequence[str], indent: int = 2) -> str:
    pad = " " * indent
    return "\n".join(f"{pad}- {item}" for item in items)


def section(title: str, body: str) -> str:
    bar = "=" * len(title)
    return f"{title}\n{bar}\n{body}\n"
