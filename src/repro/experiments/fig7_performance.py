"""Fig. 7: end-to-end library comparison on three scenarios.

CoCoPeLia (runtime tile selection) vs the cuBLASXt-like library (best
of a near-exhaustive tile sweep, the paper's generous setup) vs the
BLASX-like library (static ``T = 2048``), for dgemm and sgemm on both
testbeds, across the paper's three highlighted scenarios:

* ``full``      — all operands on the host (full offload, red in paper);
* ``c_only``    — A and B device-resident, only C on the host (blue);
* ``fat_thin``  — fat-by-thin full offload (green, transfer-heavy).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BlasXLibrary, CublasXtLibrary
from ..core.params import CoCoProblem, Loc, gemm_problem
from ..parallel import ParallelConfig, pmap, task_seed
from ..runtime import CoCoPeLiaLibrary
from ..sim.engine import use_scheduler
from ..sim.machine import MachineConfig
from . import workloads
from .harness import (models_for, prime_worker, run_gemm, testbeds,
                      warm_payload)
from .report import format_table

SCENARIOS = ("full", "c_only", "fat_thin")

#: Root of the per-problem seed derivation; each task's library seeds
#: hang off (root, machine, routine, scenario, problem index).
_SEED_ROOT = 7001

#: Tile sizes tried for cuBLASXt (the paper tests 10 and keeps the best).
XT_SWEEP = {"paper": tuple(range(1024, 10 * 1024 + 1, 1024)),
            "quick": (512, 1024, 1536, 2048, 3072),
            "tiny": (256, 512)}


def _scenario_problems(scenario: str, scale: str, dtype) -> List[CoCoProblem]:
    if scenario == "full":
        return [gemm_problem(d, d, d, dtype)
                for d in workloads._GEMM_SQUARES[scale]]
    if scenario == "c_only":
        return [
            gemm_problem(d, d, d, dtype, Loc.DEVICE, Loc.DEVICE, Loc.HOST)
            for d in workloads._GEMM_SQUARES[scale]
        ]
    if scenario == "fat_thin":
        problems = []
        for edge in workloads._SHAPE_VOLUME_EDGE[scale]:
            for ratio in workloads._SHAPE_RATIOS[scale]:
                m, n, k = workloads.shape_dims(edge, ratio, fat_by_thin=True)
                problems.append(gemm_problem(m, n, k, dtype))
        return problems
    raise ValueError(f"unknown scenario {scenario!r}")


@dataclass
class Fig7Point:
    problem: str
    gflops: Dict[str, float] = field(default_factory=dict)
    tiles: Dict[str, int] = field(default_factory=dict)


@dataclass
class Fig7Result:
    scale: str
    #: (machine, routine, scenario) -> points
    points: Dict[Tuple[str, str, str], List[Fig7Point]] = field(
        default_factory=dict)

    def winners(self) -> Dict[Tuple[str, str, str], str]:
        out = {}
        for key, pts in self.points.items():
            wins: Dict[str, int] = {}
            for p in pts:
                w = max(p.gflops, key=p.gflops.get)
                wins[w] = wins.get(w, 0) + 1
            out[key] = max(wins, key=wins.get)
        return out


def _fig7_task(machine: MachineConfig, scale: str, problem: CoCoProblem,
               xt_tiles: Tuple[int, ...], seed_base: int,
               scheduler: Optional[str] = None,
               sim_mode: str = "exact") -> Fig7Point:
    """Measure one problem under all three libraries, self-contained.

    Libraries are rebuilt per task with seeds derived from the task's
    grid coordinates (never from a shared call counter), so the point
    is identical wherever and whenever it runs.  ``scheduler`` /
    ``sim_mode`` select the simulator-core implementation for the
    CoCoPeLia runs; the defaults are the historical configuration.
    """
    models = models_for(machine, scale)
    with (use_scheduler(scheduler) if scheduler else nullcontext()):
        return _fig7_point(machine, scale, problem, xt_tiles, seed_base,
                           models, sim_mode)


def _fig7_point(machine: MachineConfig, scale: str, problem: CoCoProblem,
                xt_tiles: Tuple[int, ...], seed_base: int, models,
                sim_mode: str) -> Fig7Point:
    cc = CoCoPeLiaLibrary(machine, models, seed=task_seed(seed_base, "cc"),
                          sim_mode=sim_mode)
    xt = CublasXtLibrary(machine, seed=task_seed(seed_base, "xt"))
    bx = BlasXLibrary(machine, seed=task_seed(seed_base, "bx"))
    point = Fig7Point(problem=problem.describe())
    r_cc = run_gemm(cc, problem)
    point.gflops["CoCoPeLia"] = r_cc.gflops
    point.tiles["CoCoPeLia"] = r_cc.tile_size
    best_xt = None
    for t in xt_tiles:
        if t > problem.min_dim():
            continue
        r = run_gemm(xt, problem, tile_size=t)
        if best_xt is None or r.seconds < best_xt.seconds:
            best_xt = r
    if best_xt is None:
        best_xt = run_gemm(xt, problem, tile_size=problem.min_dim())
    point.gflops["cuBLASXt"] = best_xt.gflops
    point.tiles["cuBLASXt"] = best_xt.tile_size
    r_bx = run_gemm(bx, problem)
    point.gflops["BLASX"] = r_bx.gflops
    point.tiles["BLASX"] = r_bx.tile_size
    return point


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None,
        dtypes: Sequence = (np.float64, np.float32),
        parallel=None, scheduler: Optional[str] = None,
        sim_mode: str = "exact") -> Fig7Result:
    machines = list(machines) if machines is not None else testbeds()
    result = Fig7Result(scale=scale)
    xt_tiles = XT_SWEEP[scale]
    tasks = []
    keys: List[Tuple[str, str, str]] = []
    for machine in machines:
        for dtype in dtypes:
            prefix = "d" if np.dtype(dtype).itemsize == 8 else "s"
            routine = f"{prefix}gemm"
            for scenario in SCENARIOS:
                for i, problem in enumerate(
                        _scenario_problems(scenario, scale, dtype)):
                    seed_base = task_seed(_SEED_ROOT, machine.name,
                                          routine, scenario, i)
                    tasks.append((machine, scale, problem, xt_tiles,
                                  seed_base, scheduler, sim_mode))
                    keys.append((machine.name, routine, scenario))
    cfg = ParallelConfig.resolve(parallel)
    payload = warm_payload(machines, scale) if cfg.enabled else []
    points = pmap(_fig7_task, tasks, parallel=cfg,
                  initializer=prime_worker, initargs=(payload,))
    for key, point in zip(keys, points):
        result.points.setdefault(key, []).append(point)
    return result


def render(result: Fig7Result) -> str:
    blocks = []
    for (machine, routine, scenario), pts in sorted(result.points.items()):
        rows = []
        for p in pts:
            rows.append([
                p.problem,
                f"{p.gflops['CoCoPeLia']:.0f} (T={p.tiles['CoCoPeLia']})",
                f"{p.gflops['cuBLASXt']:.0f} (T={p.tiles['cuBLASXt']})",
                f"{p.gflops['BLASX']:.0f} (T={p.tiles['BLASX']})",
                max(p.gflops, key=p.gflops.get),
            ])
        blocks.append(format_table(
            ["problem", "CoCoPeLia GF/s", "cuBLASXt(best-T) GF/s",
             "BLASX GF/s", "winner"],
            rows,
            title=f"Fig. 7 [{machine} / {routine} / {scenario}]",
        ))
    return "\n\n".join(blocks)
