"""Fig. 3: the CoCoPeLia framework, rendered from the live system.

The paper's Fig. 3 is an architecture diagram.  Rather than a static
picture, this module *introspects* the implementation — the deployed
sub-models, the registered predictors, the library routines — and
renders the same structure, so the diagram can never drift from the
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.registry import available_models
from ..sim.machine import MachineConfig, get_testbed
from .harness import models_for


@dataclass
class Fig3Result:
    machine: str
    scale: str
    deployed: List[str] = field(default_factory=list)
    predictors: List[str] = field(default_factory=list)
    link_summary: str = ""


ROUTINE_WRAPPERS = ("gemm (d/s)", "gemv (d/s)", "axpy (d)")
SCHEDULER_FEATURES = (
    "square + rectangular tiling",
    "fetch-once tile cache",
    "1 stream per operation class",
    "multi-GPU column split",
    "host-assisted split",
)


def run(scale: str = "quick",
        machine: Optional[MachineConfig] = None) -> Fig3Result:
    machine = machine if machine is not None else get_testbed("testbed_ii")
    models = models_for(machine, scale)
    deployed = sorted(f"{p}{r}" for (r, p) in models.exec_lookups)
    link = models.link
    return Fig3Result(
        machine=machine.display_name,
        scale=scale,
        deployed=deployed,
        predictors=available_models(),
        link_summary=(
            f"h2d {link.h2d.bandwidth_gb:.2f} GB/s (sl {link.h2d.sl:.2f}) / "
            f"d2h {link.d2h.bandwidth_gb:.2f} GB/s (sl {link.d2h.sl:.2f})"
        ),
    )


def render(result: Fig3Result) -> str:
    def box(title: str, lines: List[str], width: int = 66) -> List[str]:
        inner = width - 4
        out = ["+" + "-" * (width - 2) + "+"]
        out.append("| " + title.center(inner) + " |")
        out.append("|" + "-" * (width - 2) + "|")
        for line in lines:
            out.append("| " + line.ljust(inner)[:inner] + " |")
        out.append("+" + "-" * (width - 2) + "+")
        return out

    lines: List[str] = [f"Fig. 3: the CoCoPeLia framework "
                        f"({result.machine}, scale={result.scale})", ""]
    lines += box("DEPLOYMENT (offline, once per machine)", [
        "transfer micro-benchmarks -> t_l, t_b, sl per direction",
        f"  fitted: {result.link_summary}",
        "kernel micro-benchmarks -> t_GPU^T lookup tables",
        f"  deployed routines: {', '.join(result.deployed)}",
        "95%-CI repetition; zero-intercept least squares",
    ])
    lines.append(" " * 30 + "|")
    lines.append(" " * 22 + "model database (JSON)")
    lines.append(" " * 30 + "v")
    lines += box("TILE SELECTION RUNTIME (CoCoPeLia_select)", [
        f"predictors: {', '.join(result.predictors)}",
        "candidate tiles = benchmarked sizes, T <= max(D)/1.5",
        "argmin over predicted offload time; cached per problem",
    ])
    lines.append(" " * 30 + "|")
    lines.append(" " * 26 + "T_best per problem")
    lines.append(" " * 30 + "v")
    lines += box("LIBRARY / TILE SCHEDULER", [
        f"routine wrappers: {', '.join(ROUTINE_WRAPPERS)}",
        *(f"  - {feat}" for feat in SCHEDULER_FEATURES),
        "backend: cuBLAS-like async transfers + kernels (simulated)",
    ])
    return "\n".join(lines)
