"""The distributed-overlap experiment behind ``repro summa``.

Runs the SUMMA gemm suite (blocking-broadcast baseline vs. pipelined
multicast) and the streaming-gemv suite on a simulated multi-GPU
fabric, sweeps the panel/chunk candidates to locate the true optimum,
and reports model-picked vs. sweep-optimal quality plus
predicted-vs-achieved makespan and overlap — the paper's Fig. 5/6
methodology transposed to the inter-GPU network.

The result is a versioned ``repro.summa/v1`` document (validated by
:func:`validate_summa_json`):

* per gemm problem — the model-picked panel for each variant, achieved
  and predicted makespans, the pipelined panel sweep with
  ``picked_within_pct`` (distance of the model's pick from the sweep
  optimum), profiler overlap at the picked panel, and the overlap
  error: predicted vs. achieved *hidden communication time*
  (``blocking - pipelined``);
* per gemv problem — the model-picked chunk, the chunk sweep, and the
  profiler overlap fraction (the streaming design's acceptance gate);
* suite aggregates — geomean pipelined-over-blocking speedup and the
  worst ``picked_within_pct``.

Every sweep point is an independent :func:`~repro.parallel.pmap` task
with a grid-derived seed (``task_seed``), so the document is
byte-identical for any worker count — the same discipline as fig7.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.distributed import (
    candidate_chunks,
    candidate_panels,
    predict_summa,
    select_gemv_chunk,
    select_summa_panel,
)
from ..core.params import gemm_problem, gemv_problem
from ..deploy import DeploymentConfig
from ..deploy.pipeline import DEFAULT_ROUTINES
from ..errors import ReproError
from ..obs import merge_traces, profile_trace
from ..parallel import ParallelConfig, pmap, task_seed
from ..runtime.streaming import StreamingGemv
from ..runtime.summa import SummaGemm
from ..sim.engine import use_scheduler
from ..sim.interconnect import (
    TopologySpec,
    all_to_all_topology,
    ring_topology,
)
from ..sim.machine import MachineConfig, get_testbed
from .harness import models_for
from .report import format_table

SUMMA_SCHEMA_VERSION = "repro.summa/v1"

#: Root of the per-point seed derivation (distinct from the fig7/table4
#: roots so the distributed sweeps never share noise streams).
_SEED_ROOT = 7010

_GEMM_SUITE = {
    "tiny": [(1024, 1024, 1024)],
    "quick": [(2048, 2048, 2048), (3072, 3072, 3072), (4096, 2048, 3072)],
    "paper": [(4096, 4096, 4096), (6144, 6144, 6144), (8192, 8192, 8192)],
}

_GEMV_SUITE = {
    "tiny": [(2048, 2048)],
    "quick": [(8192, 8192), (16384, 8192)],
    "paper": [(32768, 16384), (32768, 32768)],
}


def summa_deployment_config(scale: str) -> DeploymentConfig:
    """Deployment including the dgemv model the chunk predictor needs."""
    routines = DEFAULT_ROUTINES + (("gemv", np.float64),)
    if scale == "paper":
        return DeploymentConfig(routines=routines)
    return DeploymentConfig.quick(routines=routines)


def make_topology(kind: str, n_gpus: int, gb_per_s: float,
                  latency: float) -> TopologySpec:
    if kind == "ring":
        return ring_topology(n_gpus, gb_per_s=gb_per_s, latency=latency)
    if kind == "all_to_all":
        return all_to_all_topology(n_gpus, gb_per_s=gb_per_s,
                                   latency=latency)
    raise ReproError(f"unknown topology kind {kind!r}")


def _sched_ctx(scheduler: Optional[str]):
    return use_scheduler(scheduler) if scheduler else nullcontext()


# ---------------------------------------------------------------------------
# pmap point tasks (self-contained: rebuild everything from primitives)
# ---------------------------------------------------------------------------

def _summa_point(machine: MachineConfig, kind: str, n_gpus: int,
                 gb_per_s: float, latency: float,
                 dims: Tuple[int, int, int], panel: int, variant: str,
                 depth: int, seed: int, scheduler: Optional[str],
                 sim_mode: str) -> float:
    """Achieved makespan of one (problem, panel, variant) grid point."""
    topology = make_topology(kind, n_gpus, gb_per_s, latency)
    with _sched_ctx(scheduler):
        lib = SummaGemm(machine, topology, seed=seed, sim_mode=sim_mode)
        return lib.gemm(*dims, panel=panel, variant=variant,
                        depth=depth).seconds


def _gemv_point(machine: MachineConfig, kind: str, n_gpus: int,
                gb_per_s: float, latency: float, dims: Tuple[int, int],
                chunk: int, seed: int, scheduler: Optional[str],
                sim_mode: str) -> float:
    """Achieved makespan of one (problem, chunk) grid point."""
    topology = make_topology(kind, n_gpus, gb_per_s, latency)
    with _sched_ctx(scheduler):
        lib = StreamingGemv(machine, topology, seed=seed,
                            sim_mode=sim_mode)
        return lib.gemv(*dims, chunk=chunk).seconds


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------

def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _error_pct(predicted: float, achieved: float) -> float:
    return 100.0 * (predicted - achieved) / achieved


def run(
    scale: str = "quick",
    machine: str = "testbed_ii",
    n_gpus: int = 4,
    topology: str = "ring",
    gb_per_s: float = 8.0,
    latency: float = 5e-6,
    depth: int = 2,
    seed: int = 0,
    scheduler: Optional[str] = None,
    sim_mode: str = "exact",
    parallel=None,
    models=None,
) -> dict:
    """Run the distributed suite; returns a ``repro.summa/v1`` document."""
    config = get_testbed(machine)
    if models is None:
        models = models_for(config, scale,
                            config=summa_deployment_config(scale))
    topo = make_topology(topology, n_gpus, gb_per_s, latency)
    cfg = ParallelConfig.resolve(parallel)

    # ---- build the sweep grid (one pmap task per point) --------------
    gemm_dims = _GEMM_SUITE[scale]
    gemv_dims = _GEMV_SUITE[scale]
    picked: Dict[Tuple, Dict[str, int]] = {}
    tasks, keys = [], []
    for dims in gemm_dims:
        problem = gemm_problem(*dims, np.float64)
        cands = candidate_panels(problem, n_gpus, models)
        choice_p = select_summa_panel(problem, n_gpus, topo, models,
                                      variant="pipelined", depth=depth)
        choice_b = select_summa_panel(problem, n_gpus, topo, models,
                                      variant="blocking", depth=depth)
        picked[dims] = {"pipelined": choice_p.value,
                        "blocking": choice_b.value,
                        "predicted_pipelined": choice_p.predicted_time,
                        "predicted_blocking": choice_b.predicted_time}
        for panel in cands:
            point_seed = task_seed(_SEED_ROOT, seed, config.name,
                                   "summa", *dims, "pipelined", panel)
            tasks.append((config, topology, n_gpus, gb_per_s, latency,
                          dims, panel, "pipelined", depth, point_seed,
                          scheduler, sim_mode))
            keys.append(("summa", dims, "pipelined", panel))
        point_seed = task_seed(_SEED_ROOT, seed, config.name, "summa",
                               *dims, "blocking", choice_b.value)
        tasks.append((config, topology, n_gpus, gb_per_s, latency, dims,
                      choice_b.value, "blocking", depth, point_seed,
                      scheduler, sim_mode))
        keys.append(("summa", dims, "blocking", choice_b.value))
    n_summa_tasks = len(tasks)
    for dims in gemv_dims:
        problem = gemv_problem(*dims, np.float64)
        cands = candidate_chunks(problem, n_gpus, models)
        choice = select_gemv_chunk(problem, n_gpus, topo, models)
        picked[dims] = {"chunk": choice.value,
                        "predicted": choice.predicted_time}
        for chunk in cands:
            point_seed = task_seed(_SEED_ROOT, seed, config.name, "gemv",
                                   *dims, chunk)
            tasks.append((config, topology, n_gpus, gb_per_s, latency,
                          dims, chunk, point_seed, scheduler, sim_mode))
            keys.append(("gemv", dims, chunk))

    summa_times = pmap(_summa_point, tasks[:n_summa_tasks], parallel=cfg)
    gemv_times = pmap(_gemv_point, tasks[n_summa_tasks:], parallel=cfg)
    achieved = dict(zip(keys, list(summa_times) + list(gemv_times)))

    # ---- per-problem reports -----------------------------------------
    gemm_reports, speedups, within = [], [], []
    for dims in gemm_dims:
        m, n, k = dims
        problem = gemm_problem(*dims, np.float64)
        pick = picked[dims]
        p_pipe, p_blk = pick["pipelined"], pick["blocking"]
        sweep = {panel: achieved[("summa", dims, "pipelined", panel)]
                 for panel in candidate_panels(problem, n_gpus, models)}
        best_panel = min(sweep, key=lambda p: (sweep[p], -p))
        ach_pipe = sweep[p_pipe]
        ach_blk = achieved[("summa", dims, "blocking", p_blk)]
        pred_blk_at_pick = predict_summa(
            problem, p_blk, models, n_gpus=n_gpus, topology=topo,
            variant="blocking", depth=depth)
        picked_within = 100.0 * (ach_pipe - sweep[best_panel]) \
            / sweep[best_panel]
        within.append(picked_within)
        speedups.append(ach_blk / ach_pipe)

        # Traced re-run at the picked panel: same seed as the sweep
        # point, so the makespan is identical and the profiler sees the
        # exact timeline the sweep measured.
        point_seed = task_seed(_SEED_ROOT, seed, config.name, "summa",
                               *dims, "pipelined", p_pipe)
        with _sched_ctx(scheduler):
            lib = SummaGemm(config, topo, seed=point_seed, trace=True,
                            sim_mode=sim_mode)
            traced = lib.gemm(m, n, k, panel=p_pipe, variant="pipelined",
                              depth=depth)
        labels = [f"gpu{g}" for g in range(n_gpus)] + ["net"]
        report = profile_trace(merge_traces(lib.last_traces, labels=labels),
                               predicted_seconds=pick["predicted_pipelined"],
                               model="summa")
        hidden_ach = ach_blk - ach_pipe
        hidden_pred = pred_blk_at_pick - pick["predicted_pipelined"]
        gemm_reports.append({
            "dims": [m, n, k],
            "panel": {"pipelined": p_pipe, "blocking": p_blk,
                      "sweep_best": best_panel},
            "achieved_seconds": {"pipelined": ach_pipe,
                                 "blocking": ach_blk,
                                 "sweep_best": sweep[best_panel]},
            "predicted_seconds": {
                "pipelined": pick["predicted_pipelined"],
                "blocking": pick["predicted_blocking"]},
            "prediction_error_pct": {
                "pipelined": _error_pct(pick["predicted_pipelined"],
                                        ach_pipe),
                "blocking": _error_pct(pick["predicted_blocking"],
                                       ach_blk)},
            "panel_sweep": {str(p): sweep[p] for p in sorted(sweep)},
            "picked_within_pct": picked_within,
            "speedup": ach_blk / ach_pipe,
            "overlap": {
                "achieved_fraction": report.overlap_fraction,
                "achieved_efficiency": report.overlap_efficiency,
                "hidden_seconds_achieved": hidden_ach,
                "hidden_seconds_predicted": hidden_pred,
                "overlap_error_pct": _error_pct(hidden_pred, hidden_ach),
            },
            "kernels": traced.kernels,
            "fabric_bytes": traced.fabric_bytes,
        })

    gemv_reports = []
    for dims in gemv_dims:
        m, n = dims
        problem = gemv_problem(*dims, np.float64)
        pick = picked[dims]
        chunk = pick["chunk"]
        sweep = {c: achieved[("gemv", dims, c)]
                 for c in candidate_chunks(problem, n_gpus, models)}
        best_chunk = min(sweep, key=lambda c: (sweep[c], -c))
        ach = sweep[chunk]
        picked_within = 100.0 * (ach - sweep[best_chunk]) / sweep[best_chunk]
        within.append(picked_within)
        point_seed = task_seed(_SEED_ROOT, seed, config.name, "gemv",
                               *dims, chunk)
        with _sched_ctx(scheduler):
            lib = StreamingGemv(config, topo, seed=point_seed, trace=True,
                                sim_mode=sim_mode)
            traced = lib.gemv(m, n, chunk=chunk)
        labels = [f"gpu{g}" for g in range(n_gpus)] + ["net"]
        report = profile_trace(merge_traces(lib.last_traces, labels=labels),
                               predicted_seconds=pick["predicted"],
                               model="streaming_gemv")
        gemv_reports.append({
            "dims": [m, n],
            "chunk": {"picked": chunk, "sweep_best": best_chunk},
            "achieved_seconds": ach,
            "predicted_seconds": pick["predicted"],
            "prediction_error_pct": _error_pct(pick["predicted"], ach),
            "chunk_sweep": {str(c): sweep[c] for c in sorted(sweep)},
            "picked_within_pct": picked_within,
            "overlap_fraction": report.overlap_fraction,
            "overlap_efficiency": report.overlap_efficiency,
            "h2d_bytes": traced.h2d_bytes,
            "fabric_bytes": traced.fabric_bytes,
        })

    return {
        "schema": SUMMA_SCHEMA_VERSION,
        "context": {
            "machine": machine,
            "scale": scale,
            "n_gpus": n_gpus,
            "topology": {"kind": topology, "gb_per_s": gb_per_s,
                         "latency": latency},
            "depth": depth,
            "seed": seed,
            "scheduler": scheduler,
            "sim_mode": sim_mode,
        },
        "gemm": {
            "problems": gemm_reports,
            "speedup_geomean": _geomean(speedups),
        },
        "gemv": {"problems": gemv_reports},
        "selection": {"worst_picked_within_pct": max(within)},
    }


def render(doc: dict) -> str:
    """Paper-style text tables for one summa document."""
    rows = []
    for p in doc["gemm"]["problems"]:
        m, n, k = p["dims"]
        rows.append([
            f"{m}x{n}x{k}",
            p["panel"]["pipelined"],
            round(p["achieved_seconds"]["blocking"] * 1e3, 3),
            round(p["achieved_seconds"]["pipelined"] * 1e3, 3),
            round(p["speedup"], 2),
            round(p["prediction_error_pct"]["pipelined"], 1),
            round(p["picked_within_pct"], 2),
            round(p["overlap"]["achieved_fraction"], 3),
        ])
    gemm_block = format_table(
        ["problem", "panel", "blocking ms", "pipelined ms", "speedup",
         "pred e%", "pick d%", "overlap"],
        rows,
        title=f"SUMMA dgemm on {doc['context']['n_gpus']} x "
              f"{doc['context']['machine']} "
              f"({doc['context']['topology']['kind']}, geomean speedup "
              f"{doc['gemm']['speedup_geomean']:.2f}x)",
    )
    rows = []
    for p in doc["gemv"]["problems"]:
        m, n = p["dims"]
        rows.append([
            f"{m}x{n}",
            p["chunk"]["picked"],
            round(p["achieved_seconds"] * 1e3, 3),
            round(p["prediction_error_pct"], 1),
            round(p["picked_within_pct"], 2),
            round(p["overlap_fraction"], 3),
        ])
    gemv_block = format_table(
        ["problem", "chunk", "achieved ms", "pred e%", "pick d%",
         "overlap"],
        rows,
        title="Streaming dgemv (chunked, per-lane h2d + ring reduce)",
    )
    return gemm_block + "\n\n" + gemv_block


# ---------------------------------------------------------------------------
# schema validation (the CI smoke gate)
# ---------------------------------------------------------------------------

def _fail(path: str, message: str) -> None:
    raise ReproError(f"invalid summa document at {path}: {message}")


def _expect(doc: dict, path: str, key: str, types, allow_none=False):
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if value is None:
        if allow_none:
            return None
        _fail(f"{path}.{key}", "must not be null")
    if isinstance(value, bool) or not isinstance(value, types):
        _fail(f"{path}.{key}",
              f"expected {types}, got {type(value).__name__}")
    return value


def _expect_number(doc: dict, path: str, key: str, allow_none=False):
    return _expect(doc, path, key, (int, float), allow_none=allow_none)


def validate_summa_json(doc: object) -> None:
    """Check a summa document against ``repro.summa/v1``; raise on drift."""
    if not isinstance(doc, dict):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _expect(doc, "$", "schema", str)
    if schema != SUMMA_SCHEMA_VERSION:
        _fail("$.schema", f"expected {SUMMA_SCHEMA_VERSION!r}, got {schema!r}")
    context = _expect(doc, "$", "context", dict)
    _expect(context, "$.context", "machine", str)
    _expect(context, "$.context", "scale", str)
    n_gpus = _expect(context, "$.context", "n_gpus", int)
    if n_gpus < 1:
        _fail("$.context.n_gpus", f"must be >= 1, got {n_gpus}")
    topo = _expect(context, "$.context", "topology", dict)
    kind = _expect(topo, "$.context.topology", "kind", str)
    if kind not in ("ring", "all_to_all"):
        _fail("$.context.topology.kind", f"unknown kind {kind!r}")
    _expect_number(topo, "$.context.topology", "gb_per_s")
    _expect_number(topo, "$.context.topology", "latency")
    _expect(context, "$.context", "scheduler", str, allow_none=True)
    _expect(context, "$.context", "sim_mode", str)

    gemm = _expect(doc, "$", "gemm", dict)
    problems = _expect(gemm, "$.gemm", "problems", list)
    if not problems:
        _fail("$.gemm.problems", "must not be empty")
    for i, p in enumerate(problems):
        path = f"$.gemm.problems[{i}]"
        if not isinstance(p, dict):
            _fail(path, "expected an object")
        dims = _expect(p, path, "dims", list)
        if len(dims) != 3:
            _fail(f"{path}.dims", "expected [m, n, k]")
        panel = _expect(p, path, "panel", dict)
        for key in ("pipelined", "blocking", "sweep_best"):
            if _expect(panel, f"{path}.panel", key, int) <= 0:
                _fail(f"{path}.panel.{key}", "must be positive")
        ach = _expect(p, path, "achieved_seconds", dict)
        for key in ("pipelined", "blocking", "sweep_best"):
            if _expect_number(ach, f"{path}.achieved_seconds", key) <= 0:
                _fail(f"{path}.achieved_seconds.{key}", "must be positive")
        pred = _expect(p, path, "predicted_seconds", dict)
        for key in ("pipelined", "blocking"):
            _expect_number(pred, f"{path}.predicted_seconds", key)
        err = _expect(p, path, "prediction_error_pct", dict)
        for key in ("pipelined", "blocking"):
            _expect_number(err, f"{path}.prediction_error_pct", key)
        sweep = _expect(p, path, "panel_sweep", dict)
        if not sweep:
            _fail(f"{path}.panel_sweep", "must not be empty")
        for t, seconds in sweep.items():
            if (isinstance(seconds, bool)
                    or not isinstance(seconds, (int, float))):
                _fail(f"{path}.panel_sweep[{t}]", "expected a number")
        _expect_number(p, path, "picked_within_pct")
        if _expect_number(p, path, "speedup") <= 0:
            _fail(f"{path}.speedup", "must be positive")
        overlap = _expect(p, path, "overlap", dict)
        frac = _expect_number(overlap, f"{path}.overlap",
                              "achieved_fraction")
        if not 0.0 <= frac <= 1.0:
            _fail(f"{path}.overlap.achieved_fraction",
                  f"must be in [0, 1], got {frac}")
        for key in ("achieved_efficiency", "hidden_seconds_achieved",
                    "hidden_seconds_predicted", "overlap_error_pct"):
            _expect_number(overlap, f"{path}.overlap", key)
    if _expect_number(gemm, "$.gemm", "speedup_geomean") <= 0:
        _fail("$.gemm.speedup_geomean", "must be positive")

    gemv = _expect(doc, "$", "gemv", dict)
    problems = _expect(gemv, "$.gemv", "problems", list)
    if not problems:
        _fail("$.gemv.problems", "must not be empty")
    for i, p in enumerate(problems):
        path = f"$.gemv.problems[{i}]"
        if not isinstance(p, dict):
            _fail(path, "expected an object")
        dims = _expect(p, path, "dims", list)
        if len(dims) != 2:
            _fail(f"{path}.dims", "expected [m, n]")
        chunk = _expect(p, path, "chunk", dict)
        for key in ("picked", "sweep_best"):
            if _expect(chunk, f"{path}.chunk", key, int) <= 0:
                _fail(f"{path}.chunk.{key}", "must be positive")
        if _expect_number(p, path, "achieved_seconds") <= 0:
            _fail(f"{path}.achieved_seconds", "must be positive")
        _expect_number(p, path, "predicted_seconds")
        _expect_number(p, path, "prediction_error_pct")
        if not _expect(p, path, "chunk_sweep", dict):
            _fail(f"{path}.chunk_sweep", "must not be empty")
        _expect_number(p, path, "picked_within_pct")
        frac = _expect_number(p, path, "overlap_fraction")
        if not 0.0 <= frac <= 1.0:
            _fail(f"{path}.overlap_fraction",
                  f"must be in [0, 1], got {frac}")
        _expect_number(p, path, "overlap_efficiency")

    selection = _expect(doc, "$", "selection", dict)
    _expect_number(selection, "$.selection", "worst_picked_within_pct")
