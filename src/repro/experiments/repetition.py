"""Repeated-measurement harness (paper Section V-A methodology).

The paper performs "100 executions for each benchmark, after a warmup
run, not accounted for, and we report the average time".  This module
implements that protocol over any library/problem pair, with the
simulated noise providing genuine run-to-run variance, plus the
confidence-interval summary used to decide whether a reported mean is
trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..deploy.regression import confidence_interval
from ..errors import DeploymentError, ReproError
from .harness import run_problem


@dataclass(frozen=True)
class RepeatedMeasurement:
    """Summary of repeated executions of one (library, problem, T)."""

    mean: float
    std: float
    ci_half: float
    n: int
    warmup: float
    samples: List[float] = field(repr=False, default_factory=list)

    @property
    def rel_ci(self) -> float:
        """CI half-width relative to the mean."""
        if self.mean == 0:
            return 0.0
        return self.ci_half / self.mean

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean


def measure_repeated(
    lib,
    problem,
    tile_size: Optional[int] = None,
    reps: int = 100,
    warmup_runs: int = 1,
    confidence: float = 0.95,
    rel_ci_target: Optional[float] = None,
    max_repetitions: int = 1000,
    **kwargs,
) -> RepeatedMeasurement:
    """Run a benchmark the way the paper does: warmup + N timed reps.

    Each repetition goes through the library's normal call path (fresh
    simulated device, advancing noise stream), so the variance is the
    machine's, not an artifact.

    When ``rel_ci_target`` is set, ``reps`` becomes the *minimum* and
    measurement continues until the CI half-width falls within that
    fraction of the mean.  ``max_repetitions`` is a hard cap on that
    loop: non-convergence raises :class:`DeploymentError` rather than
    running forever or silently reporting an untrustworthy mean.
    """
    if reps < 2:
        raise ReproError(f"need at least 2 repetitions, got {reps}")
    if max_repetitions < reps:
        raise ReproError(
            f"max_repetitions ({max_repetitions}) must be >= reps ({reps})")
    warmup_time = 0.0
    for _ in range(warmup_runs):
        warmup_time = run_problem(lib, problem, tile_size=tile_size,
                                  **kwargs).seconds
    samples = [
        run_problem(lib, problem, tile_size=tile_size, **kwargs).seconds
        for _ in range(reps)
    ]
    mean, half = confidence_interval(samples, confidence)
    if rel_ci_target is not None:
        while half > rel_ci_target * abs(mean) or mean == 0.0:
            if len(samples) >= max_repetitions:
                raise DeploymentError(
                    f"measurement did not converge to rel CI "
                    f"{rel_ci_target:.3f} after {max_repetitions} "
                    f"repetitions (mean {mean:.3e}, CI half-width "
                    f"{half:.3e})")
            samples.append(
                run_problem(lib, problem, tile_size=tile_size,
                            **kwargs).seconds)
            mean, half = confidence_interval(samples, confidence)
            if mean == 0.0 and half == 0.0:
                break
    return RepeatedMeasurement(
        mean=mean,
        std=float(np.std(samples, ddof=1)),
        ci_half=half,
        n=len(samples),
        warmup=warmup_time,
        samples=samples,
    )
