"""Repeated-measurement harness (paper Section V-A methodology).

The paper performs "100 executions for each benchmark, after a warmup
run, not accounted for, and we report the average time".  This module
implements that protocol over any library/problem pair, with the
simulated noise providing genuine run-to-run variance, plus the
confidence-interval summary used to decide whether a reported mean is
trustworthy.

Determinism: every repetition's noise is a pure function of its *call
index* — the libraries derive each call's device seed as
``seed + call_number``, and the indices for all repetitions are derived
up front rather than read off a shared counter as the loop advances.
Repetition ``i`` therefore produces the same sample whether it runs
first, last, or in another process, which is what lets the parallel
path (``lib_factory`` + ``parallel``) return bit-identical samples to
the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..deploy.regression import confidence_interval
from ..errors import DeploymentError, ParallelError, ReproError
from ..parallel import ParallelConfig, pmap
from .harness import run_problem


@dataclass(frozen=True)
class RepeatedMeasurement:
    """Summary of repeated executions of one (library, problem, T)."""

    mean: float
    std: float
    ci_half: float
    n: int
    warmup: float
    samples: List[float] = field(repr=False, default_factory=list)

    @property
    def rel_ci(self) -> float:
        """CI half-width relative to the mean."""
        if self.mean == 0:
            return 0.0
        return self.ci_half / self.mean

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean


def _run_at(lib, problem, tile_size: Optional[int], idx: int,
            kwargs: dict, strict: bool = False) -> float:
    """Run one call pinned to call index ``idx`` (1-based).

    The libraries advance an internal call counter and seed each call's
    device from it; pinning the counter makes the draw a function of
    ``idx`` alone, independent of how many calls ran before in this
    process.  A library without a counter can only run sequentially
    (``strict=False``); the parallel path refuses it.
    """
    if hasattr(lib, "_calls"):
        lib._calls = idx - 1
    elif strict:
        raise ParallelError(
            f"{type(lib).__name__} has no call counter; repetition "
            f"indices cannot be pinned for order-independent execution")
    return run_problem(lib, problem, tile_size=tile_size, **kwargs).seconds


def _rep_task(lib_factory: Callable, problem, tile_size: Optional[int],
              idx: int, kwargs: dict) -> float:
    """One repetition in a worker: fresh library, pinned call index."""
    return _run_at(lib_factory(), problem, tile_size, idx, kwargs,
                   strict=True)


def measure_repeated(
    lib=None,
    problem=None,
    tile_size: Optional[int] = None,
    reps: int = 100,
    warmup_runs: int = 1,
    confidence: float = 0.95,
    rel_ci_target: Optional[float] = None,
    max_repetitions: int = 1000,
    lib_factory: Optional[Callable] = None,
    parallel=None,
    **kwargs,
) -> RepeatedMeasurement:
    """Run a benchmark the way the paper does: warmup + N timed reps.

    Each repetition goes through the library's normal call path (fresh
    simulated device, advancing noise stream), so the variance is the
    machine's, not an artifact.  All repetition indices are derived
    before the first timed run, so the sample at position ``i`` is
    independent of execution order.

    ``lib_factory`` (a picklable zero-argument callable, e.g.
    :class:`~repro.experiments.harness.LibraryFactory`) enables the
    process-pool path: with ``parallel`` set, repetitions fan out
    across workers, each rebuilding the library and pinning its call
    index, and the merged samples are bit-identical to a serial run.
    Passing only ``lib`` keeps the classic in-process protocol.

    When ``rel_ci_target`` is set, ``reps`` becomes the *minimum* and
    measurement continues until the CI half-width falls within that
    fraction of the mean.  ``max_repetitions`` is a hard cap on that
    loop: non-convergence raises :class:`DeploymentError` rather than
    running forever or silently reporting an untrustworthy mean.
    """
    if reps < 2:
        raise ReproError(f"need at least 2 repetitions, got {reps}")
    if max_repetitions < reps:
        raise ReproError(
            f"max_repetitions ({max_repetitions}) must be >= reps ({reps})")
    if lib is None and lib_factory is None:
        raise ReproError("measure_repeated needs a lib or a lib_factory")
    cfg = ParallelConfig.resolve(parallel)
    if cfg.enabled and lib_factory is None:
        raise ParallelError(
            "parallel repetitions need a picklable lib_factory "
            "(library objects do not cross process boundaries)")
    if lib is None:
        lib = lib_factory()

    base = getattr(lib, "_calls", 0)
    warmup_time = 0.0
    for w in range(warmup_runs):
        warmup_time = _run_at(lib, problem, tile_size, base + 1 + w,
                              kwargs)
    # Pre-derived call indices, one per repetition: the substream each
    # repetition draws from is fixed here, not by loop order.
    first = base + warmup_runs + 1
    indices = [first + i for i in range(reps)]

    if lib_factory is not None:
        tasks = [(lib_factory, problem, tile_size, idx, kwargs)
                 for idx in indices]
        samples = pmap(_rep_task, tasks, parallel=cfg)
    else:
        samples = [_run_at(lib, problem, tile_size, idx, kwargs)
                   for idx in indices]

    mean, half = confidence_interval(samples, confidence)
    if rel_ci_target is not None:
        while half > rel_ci_target * abs(mean) or mean == 0.0:
            if len(samples) >= max_repetitions:
                raise DeploymentError(
                    f"measurement did not converge to rel CI "
                    f"{rel_ci_target:.3f} after {max_repetitions} "
                    f"repetitions (mean {mean:.3e}, CI half-width "
                    f"{half:.3e})")
            idx = first + len(samples)
            if lib_factory is not None:
                samples.append(_rep_task(lib_factory, problem, tile_size,
                                         idx, kwargs))
            else:
                samples.append(_run_at(lib, problem, tile_size, idx,
                                       kwargs))
            mean, half = confidence_interval(samples, confidence)
            if mean == 0.0 and half == 0.0:
                break
    # Leave the library's counter where a sequential run would have,
    # so interleaved callers keep their historical draw sequences.
    if hasattr(lib, "_calls"):
        lib._calls = first + len(samples) - 1
    return RepeatedMeasurement(
        mean=mean,
        std=float(np.std(samples, ddof=1)),
        ci_half=half,
        n=len(samples),
        warmup=warmup_time,
        samples=samples,
    )
