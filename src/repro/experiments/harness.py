"""Shared experiment machinery.

Maps :class:`~repro.core.params.CoCoProblem` descriptors onto the
library call signatures (timing mode — no real data), deploys/caches
model databases per (machine, scale), and provides the per-problem
measurement loops the figure modules build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    BlasXLibrary,
    CublasXtLibrary,
    SerialOffloadLibrary,
    UnifiedMemoryLibrary,
)
from ..core.instantiation import MachineModels
from ..core.params import CoCoProblem, Loc
from ..deploy import DeploymentConfig, deploy
from ..errors import ReproError
from ..runtime import CoCoPeLiaLibrary
from ..runtime.result import RunResult
from ..sim.machine import MachineConfig, get_testbed

#: In-process cache of deployed model databases, keyed by
#: (machine name, scale, config fingerprint); deployment is
#: deterministic in those three, so the cache is safe — and parallel
#: workers prime it once per process via :func:`prime_worker`.
_MODEL_CACHE: Dict[Tuple, MachineModels] = {}


def _config_fingerprint(config: Optional[DeploymentConfig]):
    """Stable identity of a deployment config, for cache keying.

    ``workers`` is deliberately excluded: the parallel layer guarantees
    worker count never changes the deployed numbers, so a serial and a
    fanned-out deployment of the same config share a cache entry.
    """
    if config is None:
        return None
    t, e = config.transfer, config.exec
    return (
        config.seed,
        tuple((r, np.dtype(d).str) for r, d in config.routines),
        (t.edges, t.dtype.str, t.latency_probes, t.rel_half_width,
         t.confidence, t.min_reps, t.max_reps, t.opposite_factor),
        (e.gemm_tiles, e.axpy_tiles, e.gemv_tiles, e.rel_half_width,
         e.confidence, e.min_reps, e.max_reps),
    )


def _default_config(scale: str) -> DeploymentConfig:
    if scale == "paper":
        return DeploymentConfig()
    return DeploymentConfig.quick()


def models_for(machine: MachineConfig, scale: str = "quick",
               force: bool = False,
               config: Optional[DeploymentConfig] = None,
               parallel=None) -> MachineModels:
    """Deploy (or fetch cached) models for a machine at a given scale.

    An explicit ``config`` gets its own cache entry (keyed by content,
    not object identity), so force-deploying a custom sweep can never
    serve stale models to callers of the default one.
    """
    key = (machine.name, scale, _config_fingerprint(config))
    if not force and key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    cfg = config if config is not None else _default_config(scale)
    models = deploy(machine, cfg, parallel=parallel)
    _MODEL_CACHE[key] = models
    return models


def clear_model_cache() -> None:
    """Drop every cached model database (tests, worker hygiene)."""
    _MODEL_CACHE.clear()


def prime_model_cache(machine: MachineConfig, scale: str,
                      models: MachineModels,
                      config: Optional[DeploymentConfig] = None) -> None:
    """Install an already-deployed database into the cache."""
    _MODEL_CACHE[(machine.name, scale, _config_fingerprint(config))] = models


def warm_payload(machines: Sequence[MachineConfig],
                 scale: str = "quick") -> List[Tuple]:
    """A picklable snapshot of the cache entries workers will need.

    Deploys (through the cache) in the parent if necessary; ship the
    result to :func:`prime_worker` via ``pmap(initializer=...)`` so
    each worker process rebuilds its models exactly once instead of
    unpickling them per task.
    """
    return [(machine, scale, models_for(machine, scale).to_dict())
            for machine in machines]


def prime_worker(payload: Sequence[Tuple]) -> None:
    """Pool initializer: rebuild shipped model databases in-process."""
    for machine, scale, models_dict in payload:
        prime_model_cache(machine, scale,
                          MachineModels.from_dict(models_dict))


def problem_locs(problem: CoCoProblem) -> Dict[str, Loc]:
    return {op.name: op.loc for op in problem.operands}


def run_gemm(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a gemm-capable library on a problem descriptor."""
    if problem.routine.name != "gemm":
        raise ReproError(f"run_gemm got a {problem.routine.name} problem")
    m, n, k = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(
        dtype=problem.dtype,
        loc_a=locs["A"], loc_b=locs["B"], loc_c=locs["C"],
        **kwargs,
    )
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.gemm(m, n, k, **call_kwargs)


def run_axpy(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke an axpy-capable library on a problem descriptor."""
    if problem.routine.name != "axpy":
        raise ReproError(f"run_axpy got a {problem.routine.name} problem")
    (n,) = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_x=locs["x"], loc_y=locs["y"],
                       **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.axpy(n, **call_kwargs)


def run_gemv(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a gemv-capable library on a problem descriptor."""
    if problem.routine.name != "gemv":
        raise ReproError(f"run_gemv got a {problem.routine.name} problem")
    m, n = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_a=locs["A"],
                       loc_x=locs["x"], loc_y=locs["y"], **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.gemv(m, n, **call_kwargs)


def run_syrk(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a syrk-capable library on a problem descriptor."""
    if problem.routine.name != "syrk":
        raise ReproError(f"run_syrk got a {problem.routine.name} problem")
    n, k = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_a=locs["A"],
                       loc_c=locs["C"], **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.syrk(n, k, **call_kwargs)


def run_problem(lib, problem: CoCoProblem,
                tile_size: Optional[int] = None, **kwargs) -> RunResult:
    if problem.routine.name == "gemm":
        return run_gemm(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "gemv":
        return run_gemv(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "syrk":
        return run_syrk(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "axpy":
        return run_axpy(lib, problem, tile_size, **kwargs)
    raise ReproError(f"no runner for routine {problem.routine.name!r}")


@dataclass
class SweepPoint:
    """One (problem, T) measurement."""

    problem: CoCoProblem
    tile_size: int
    result: RunResult


def measure_tile_sweep(lib, problem: CoCoProblem,
                       tiles: Sequence[int], **kwargs) -> List[SweepPoint]:
    """Measure a library across a tile-size sweep for one problem."""
    points = []
    for t in tiles:
        result = run_problem(lib, problem, tile_size=t, **kwargs)
        points.append(SweepPoint(problem, t, result))
    return points


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The empirically fastest point of a sweep (T_opt)."""
    if not points:
        raise ReproError("empty sweep")
    return min(points, key=lambda p: p.result.seconds)


def standard_libraries(machine: MachineConfig, models: MachineModels,
                       nstreams: int = 4) -> Dict[str, object]:
    """The comparison set of Section V-E, bound to one machine."""
    return {
        "CoCoPeLia": CoCoPeLiaLibrary(machine, models),
        "cuBLASXt": CublasXtLibrary(machine, nstreams=nstreams),
        "BLASX": BlasXLibrary(machine),
        "UnifiedMem": UnifiedMemoryLibrary(machine),
        "Serial": SerialOffloadLibrary(machine),
    }


#: Library display name -> class, shared with :class:`LibraryFactory`.
_LIBRARY_CLASSES = {
    "CoCoPeLia": CoCoPeLiaLibrary,
    "cuBLASXt": CublasXtLibrary,
    "BLASX": BlasXLibrary,
    "UnifiedMem": UnifiedMemoryLibrary,
    "Serial": SerialOffloadLibrary,
}


@dataclass(frozen=True)
class LibraryFactory:
    """A picklable recipe for rebuilding a library in a worker.

    Library objects hold simulator state and models, so they do not
    cross process boundaries; tasks ship this factory instead and call
    it in the worker, where :func:`models_for` hits the per-process
    warm cache.  ``seed`` overrides the library's default noise seed
    (``None`` keeps it).
    """

    library: str
    machine: MachineConfig
    scale: str = "quick"
    model: str = "auto"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.library not in _LIBRARY_CLASSES:
            raise ReproError(
                f"unknown library {self.library!r}; available: "
                f"{sorted(_LIBRARY_CLASSES)}")

    def __call__(self):
        cls = _LIBRARY_CLASSES[self.library]
        kwargs = {} if self.seed is None else {"seed": self.seed}
        if cls is CoCoPeLiaLibrary:
            return cls(self.machine, models_for(self.machine, self.scale),
                       model=self.model, **kwargs)
        return cls(self.machine, **kwargs)


def testbeds(names: Optional[Sequence[str]] = None) -> List[MachineConfig]:
    if names is None:
        names = ("testbed_i", "testbed_ii")
    return [get_testbed(n) for n in names]
