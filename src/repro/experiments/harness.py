"""Shared experiment machinery.

Maps :class:`~repro.core.params.CoCoProblem` descriptors onto the
library call signatures (timing mode — no real data), deploys/caches
model databases per (machine, scale), and provides the per-problem
measurement loops the figure modules build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    BlasXLibrary,
    CublasXtLibrary,
    SerialOffloadLibrary,
    UnifiedMemoryLibrary,
)
from ..core.instantiation import MachineModels
from ..core.params import CoCoProblem, Loc
from ..deploy import DeploymentConfig, deploy
from ..errors import ReproError
from ..runtime import CoCoPeLiaLibrary
from ..runtime.result import RunResult
from ..sim.machine import MachineConfig, get_testbed

#: In-process cache of deployed model databases, keyed by
#: (machine name, scale); deployment is deterministic so this is safe.
_MODEL_CACHE: Dict[Tuple[str, str], MachineModels] = {}


def models_for(machine: MachineConfig, scale: str = "quick",
               force: bool = False) -> MachineModels:
    """Deploy (or fetch cached) models for a machine at a given scale."""
    key = (machine.name, scale)
    if not force and key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    if scale == "paper":
        config = DeploymentConfig()
    else:
        config = DeploymentConfig.quick()
    models = deploy(machine, config)
    _MODEL_CACHE[key] = models
    return models


def problem_locs(problem: CoCoProblem) -> Dict[str, Loc]:
    return {op.name: op.loc for op in problem.operands}


def run_gemm(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a gemm-capable library on a problem descriptor."""
    if problem.routine.name != "gemm":
        raise ReproError(f"run_gemm got a {problem.routine.name} problem")
    m, n, k = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(
        dtype=problem.dtype,
        loc_a=locs["A"], loc_b=locs["B"], loc_c=locs["C"],
        **kwargs,
    )
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.gemm(m, n, k, **call_kwargs)


def run_axpy(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke an axpy-capable library on a problem descriptor."""
    if problem.routine.name != "axpy":
        raise ReproError(f"run_axpy got a {problem.routine.name} problem")
    (n,) = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_x=locs["x"], loc_y=locs["y"],
                       **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.axpy(n, **call_kwargs)


def run_gemv(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a gemv-capable library on a problem descriptor."""
    if problem.routine.name != "gemv":
        raise ReproError(f"run_gemv got a {problem.routine.name} problem")
    m, n = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_a=locs["A"],
                       loc_x=locs["x"], loc_y=locs["y"], **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.gemv(m, n, **call_kwargs)


def run_syrk(lib, problem: CoCoProblem, tile_size: Optional[int] = None,
             **kwargs) -> RunResult:
    """Invoke a syrk-capable library on a problem descriptor."""
    if problem.routine.name != "syrk":
        raise ReproError(f"run_syrk got a {problem.routine.name} problem")
    n, k = problem.dims
    locs = problem_locs(problem)
    call_kwargs = dict(dtype=problem.dtype, loc_a=locs["A"],
                       loc_c=locs["C"], **kwargs)
    if tile_size is not None:
        call_kwargs["tile_size"] = tile_size
    return lib.syrk(n, k, **call_kwargs)


def run_problem(lib, problem: CoCoProblem,
                tile_size: Optional[int] = None, **kwargs) -> RunResult:
    if problem.routine.name == "gemm":
        return run_gemm(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "gemv":
        return run_gemv(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "syrk":
        return run_syrk(lib, problem, tile_size, **kwargs)
    if problem.routine.name == "axpy":
        return run_axpy(lib, problem, tile_size, **kwargs)
    raise ReproError(f"no runner for routine {problem.routine.name!r}")


@dataclass
class SweepPoint:
    """One (problem, T) measurement."""

    problem: CoCoProblem
    tile_size: int
    result: RunResult


def measure_tile_sweep(lib, problem: CoCoProblem,
                       tiles: Sequence[int], **kwargs) -> List[SweepPoint]:
    """Measure a library across a tile-size sweep for one problem."""
    points = []
    for t in tiles:
        result = run_problem(lib, problem, tile_size=t, **kwargs)
        points.append(SweepPoint(problem, t, result))
    return points


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The empirically fastest point of a sweep (T_opt)."""
    if not points:
        raise ReproError("empty sweep")
    return min(points, key=lambda p: p.result.seconds)


def standard_libraries(machine: MachineConfig, models: MachineModels,
                       nstreams: int = 4) -> Dict[str, object]:
    """The comparison set of Section V-E, bound to one machine."""
    return {
        "CoCoPeLia": CoCoPeLiaLibrary(machine, models),
        "cuBLASXt": CublasXtLibrary(machine, nstreams=nstreams),
        "BLASX": BlasXLibrary(machine),
        "UnifiedMem": UnifiedMemoryLibrary(machine),
        "Serial": SerialOffloadLibrary(machine),
    }


def testbeds(names: Optional[Sequence[str]] = None) -> List[MachineConfig]:
    if names is None:
        names = ("testbed_i", "testbed_ii")
    return [get_testbed(n) for n in names]
