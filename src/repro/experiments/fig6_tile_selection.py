"""Fig. 6: validation of tiling-size selection (Testbed II in the paper).

For every gemm validation problem, measure the CoCoPeLia library across
the full candidate tile sweep to find the empirical optimum ``T_opt``,
then compare the performance achieved by:

* the static ``T = 2048`` (BLASX's default — the gray baseline bars),
* ``T_opt`` (the upper bound),
* the tile chosen by each prediction model: CSO, Eq. 1 (baseline),
  Eq. 2 (data location), Eq. 4 (BTS), Eq. 5 (DR).

The paper reports DR-selected tiles within a few percent of ``T_opt``
and a clear incremental improvement from Eq. 1 to Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.params import CoCoProblem
from ..core.select import candidate_tiles, select_tile
from ..runtime import CoCoPeLiaLibrary
from ..sim.machine import MachineConfig, get_testbed
from . import workloads
from .harness import models_for, run_gemm
from .metrics import geomean
from .report import format_table

SELECTORS = ("cso", "baseline", "dataloc", "bts", "dr")
STATIC_TILE = 2048


@dataclass
class Fig6Row:
    problem: str
    t_opt: int
    gflops_opt: float
    gflops_static: float
    static_tile: int
    #: model name -> (selected tile, achieved GFLOP/s)
    by_model: Dict[str, tuple] = field(default_factory=dict)

    def speedup_vs_static(self, model: str) -> float:
        return self.by_model[model][1] / self.gflops_static

    @property
    def opt_speedup_vs_static(self) -> float:
        return self.gflops_opt / self.gflops_static


@dataclass
class Fig6Result:
    scale: str
    machine: str
    rows_by_routine: Dict[str, List[Fig6Row]] = field(default_factory=dict)

    def summary(self, routine: str) -> Dict[str, float]:
        """Median speedup over the static tile per selector (and T_opt)."""
        rows = self.rows_by_routine[routine]
        out = {"t_opt": float(np.median(
            [r.opt_speedup_vs_static for r in rows]))}
        for model in SELECTORS:
            out[model] = float(np.median(
                [r.speedup_vs_static(model) for r in rows]))
        return out

    def summary_max(self, routine: str) -> Dict[str, float]:
        """Best-case speedup over the static tile per selector."""
        rows = self.rows_by_routine[routine]
        out = {"t_opt": float(max(r.opt_speedup_vs_static for r in rows))}
        for model in SELECTORS:
            out[model] = float(max(
                r.speedup_vs_static(model) for r in rows))
        return out

    def gap_to_optimal(self, routine: str) -> Dict[str, float]:
        """Median fraction of T_opt performance each selector achieves."""
        rows = self.rows_by_routine[routine]
        out = {}
        for model in SELECTORS:
            out[model] = float(np.median(
                [r.by_model[model][1] / r.gflops_opt for r in rows]))
        return out


def run(scale: str = "quick",
        machine: Optional[MachineConfig] = None,
        dtypes: Sequence = (np.float64, np.float32)) -> Fig6Result:
    machine = machine if machine is not None else get_testbed("testbed_ii")
    models = models_for(machine, scale)
    lib = CoCoPeLiaLibrary(machine, models)
    result = Fig6Result(scale=scale, machine=machine.name)
    for dtype in dtypes:
        prefix = "d" if np.dtype(dtype).itemsize == 8 else "s"
        routine = f"{prefix}gemm"
        rows: List[Fig6Row] = []
        for problem in workloads.gemm_validation_set(scale, dtype):
            cands = candidate_tiles(problem, models)
            measured: Dict[int, float] = {}
            for t in cands:
                measured[t] = run_gemm(lib, problem, tile_size=t).gflops
            # The static baseline is BLASX's actual behaviour: T = 2048
            # clamped to the problem (measured even when the model would
            # never pick it).
            static_tile = min(STATIC_TILE, problem.min_dim())
            if static_tile not in measured:
                measured[static_tile] = run_gemm(
                    lib, problem, tile_size=static_tile).gflops
            t_opt = max(measured, key=measured.get)
            row = Fig6Row(
                problem=problem.describe(),
                t_opt=t_opt,
                gflops_opt=measured[t_opt],
                gflops_static=measured[static_tile],
                static_tile=static_tile,
            )
            for model in SELECTORS:
                choice = select_tile(problem, models, model=model)
                t_sel = choice.t_best
                if t_sel not in measured:
                    measured[t_sel] = run_gemm(
                        lib, problem, tile_size=t_sel).gflops
                row.by_model[model] = (t_sel, measured[t_sel])
            rows.append(row)
        result.rows_by_routine[routine] = rows
    return result


def render(result: Fig6Result) -> str:
    blocks = []
    for routine, rows in result.rows_by_routine.items():
        table_rows = []
        for r in rows:
            table_rows.append(
                [r.problem, r.static_tile, round(r.gflops_static, 0),
                 r.t_opt, round(r.gflops_opt, 0)]
                + [f"{r.by_model[m][0]}:{r.by_model[m][1]:.0f}"
                   for m in SELECTORS]
            )
        headers = (["problem", "T_stat", "GF/s stat", "T_opt", "GF/s opt"]
                   + [f"{m} (T:GF/s)" for m in SELECTORS])
        blocks.append(format_table(
            headers, table_rows,
            title=f"Fig. 6 ({result.machine}, {routine}): "
                  "tile selection vs static T=2048",
        ))
        summary = result.summary(routine)
        line = ", ".join(
            f"{k}: {100 * (v - 1):+.1f}%" for k, v in summary.items()
        )
        blocks.append(f"{routine} median speedup vs static tile -> {line}")
        smax = result.summary_max(routine)
        line = ", ".join(
            f"{k}: {100 * (v - 1):+.1f}%" for k, v in smax.items()
        )
        blocks.append(f"{routine} max speedup vs static tile -> {line}")
        gap = result.gap_to_optimal(routine)
        line = ", ".join(f"{k}: {100 * v:.1f}%" for k, v in gap.items())
        blocks.append(f"{routine} median fraction of T_opt achieved -> {line}")
    return "\n\n".join(blocks)
