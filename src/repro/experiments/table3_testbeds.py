"""Table III: experimental-setup description of the two testbeds.

Rendered from the machine configurations, which encode the paper's
Table III (CPU/GPU models, peak FLOP rates, PCIe generation) and
Table II (link parameters) as simulation ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..sim.machine import MachineConfig
from ..units import GIGA
from .harness import testbeds
from .report import format_table


@dataclass
class Table3Result:
    scale: str
    machines: List[MachineConfig] = field(default_factory=list)


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None) -> Table3Result:
    machines = list(machines) if machines is not None else testbeds()
    return Table3Result(scale=scale, machines=machines)


def render(result: Table3Result) -> str:
    rows = []
    attributes = [
        ("CPU", lambda m: m.cpu),
        ("GPU", lambda m: m.gpu),
        ("PCIe", lambda m: m.pcie),
        ("GPU memory", lambda m: f"{m.gpu_mem_bytes >> 30} GiB"),
        ("FP64 peak", lambda m: f"{m.kernels.gemm(np.float64).peak_flops / 1e12:.2f} TFlop/s"),
        ("FP32 peak", lambda m: f"{m.kernels.gemm(np.float32).peak_flops / 1e12:.2f} TFlop/s"),
        ("h2d bandwidth", lambda m: f"{m.h2d.bandwidth / GIGA:.2f} GB/s"),
        ("d2h bandwidth", lambda m: f"{m.d2h.bandwidth / GIGA:.2f} GB/s"),
        ("bid. slowdown (h2d/d2h)",
         lambda m: f"{m.h2d.bid_slowdown:.2f} / {m.d2h.bid_slowdown:.2f}"),
        ("noise sigma", lambda m: f"{m.noise_sigma:.3f}"),
    ]
    for label, getter in attributes:
        rows.append([label] + [getter(m) for m in result.machines])
    headers = ["attribute"] + [m.display_name for m in result.machines]
    return format_table(
        headers, rows,
        title="Table III: simulated testbeds (ground-truth configuration)",
    )
