"""Fig. 1: effect of tiling size on cuBLASXt dgemm performance.

For each testbed and problem size, sweep the tiling size of the
cuBLASXt-like library and report GFLOP/s per tile size, annotated with
the static-tile performance the paper highlights (its T=4096 default
loses up to ~9-15% vs the per-problem optimum).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import CublasXtLibrary
from ..core.params import gemm_problem
from ..sim.machine import MachineConfig
from . import workloads
from .harness import best_point, measure_tile_sweep, testbeds
from .report import ascii_series, format_table

#: The static tile annotated in the paper's Fig. 1 (T=4096, the best
#: average performer for cuBLASXt per Section V).
STATIC_TILE = {"paper": 4096, "quick": 4096, "tiny": 512}


@dataclass
class Fig1Series:
    machine: str
    size: int
    tiles: List[int]
    gflops: List[float]
    t_opt: int
    gflops_opt: float
    static_tile: int
    gflops_static: float

    @property
    def static_slowdown_pct(self) -> float:
        """Performance lost by the static tile vs the optimum."""
        return 100.0 * (1.0 - self.gflops_static / self.gflops_opt)


@dataclass
class Fig1Result:
    scale: str
    series: List[Fig1Series] = field(default_factory=list)


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None) -> Fig1Result:
    machines = list(machines) if machines is not None else testbeds()
    static_tile = STATIC_TILE[scale]
    result = Fig1Result(scale=scale)
    for machine in machines:
        lib = CublasXtLibrary(machine)
        for size in workloads.fig1_sizes(scale):
            problem = gemm_problem(size, size, size)
            tiles = workloads.fig1_tile_sweep(size, scale)
            if static_tile not in tiles and static_tile <= problem.min_dim():
                tiles = sorted(set(tiles) | {static_tile})
            points = measure_tile_sweep(lib, problem, tiles)
            opt = best_point(points)
            by_tile: Dict[int, float] = {
                p.tile_size: p.result.gflops for p in points
            }
            static_used = static_tile if static_tile in by_tile else opt.tile_size
            result.series.append(
                Fig1Series(
                    machine=machine.name,
                    size=size,
                    tiles=[p.tile_size for p in points],
                    gflops=[p.result.gflops for p in points],
                    t_opt=opt.tile_size,
                    gflops_opt=opt.result.gflops,
                    static_tile=static_used,
                    gflops_static=by_tile[static_used],
                )
            )
    return result


def render(result: Fig1Result) -> str:
    blocks = []
    rows = []
    for s in result.series:
        chart = ascii_series(
            s.tiles, s.gflops, title=(
                f"Fig.1 {s.machine} dgemm {s.size}^3: GFLOP/s vs T "
                f"(T_opt={s.t_opt})"
            ),
        )
        blocks.append(chart)
        rows.append([
            s.machine, s.size, s.t_opt, round(s.gflops_opt, 1),
            s.static_tile, round(s.gflops_static, 1),
            round(s.static_slowdown_pct, 1),
        ])
    table = format_table(
        ["machine", "M=N=K", "T_opt", "GF/s@T_opt", "T_static",
         "GF/s@static", "static loss %"],
        rows,
        title="Fig. 1 summary: static vs optimal tiling size (cuBLASXt dgemm)",
    )
    return "\n\n".join(blocks + [table])
