"""Fig. 2: the 3-way-concurrency pipeline with data reuse, visualized.

Runs a small tiled gemm through the CoCoPeLia scheduler on a traced
device and renders the per-engine timeline: initially transfer-bound
(every subkernel waits on h2d), then execution-bound once tiles are
resident — exactly the transition the paper's Fig. 2 illustrates and
the DR model's ``k_in`` term captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..backend.cublas import CublasContext
from ..core.params import gemm_problem
from ..runtime.routines import _host_operand
from ..runtime.scheduler import GemmTileScheduler
from ..sim.device import GpuDevice
from ..sim.machine import MachineConfig, get_testbed
from ..sim.trace import render_timeline


@dataclass
class Fig2Result:
    machine: str
    size: int
    tile: int
    seconds: float
    h2d_busy: float
    exec_busy: float
    d2h_busy: float
    h2d_exec_overlap: float
    timeline: str


def run(scale: str = "quick",
        machine: Optional[MachineConfig] = None,
        size: Optional[int] = None,
        tile: Optional[int] = None) -> Fig2Result:
    machine = machine if machine is not None else get_testbed("testbed_ii")
    if size is None:
        size = 1024 if scale == "tiny" else 4096
    if tile is None:
        tile = size // 8
    device = GpuDevice(machine, trace=True)
    ctx = CublasContext(device)
    problem = gemm_problem(size, size, size)
    hosts = {name: _host_operand(problem, name, None) for name in "ABC"}
    sched = GemmTileScheduler(ctx, problem, tile, hosts)
    stats = sched.run()
    sched.release()
    trace = device.trace
    assert trace is not None
    return Fig2Result(
        machine=machine.name,
        size=size,
        tile=tile,
        seconds=stats.seconds,
        h2d_busy=trace.busy_time("h2d"),
        exec_busy=trace.busy_time("exec"),
        d2h_busy=trace.busy_time("d2h"),
        h2d_exec_overlap=trace.overlap_time("h2d", "exec"),
        timeline=render_timeline(trace, width=100,
                                 engines=["h2d", "exec", "d2h"]),
    )


def render(result: Fig2Result) -> str:
    pct = 100.0 * result.h2d_exec_overlap / max(result.exec_busy, 1e-12)
    return (
        f"Fig. 2: reuse pipeline, {result.machine}, dgemm "
        f"{result.size}^3, T={result.tile}\n"
        f"{result.timeline}\n"
        f"makespan {result.seconds * 1e3:.2f} ms | engine busy: "
        f"h2d {result.h2d_busy * 1e3:.2f} ms, exec "
        f"{result.exec_busy * 1e3:.2f} ms, d2h {result.d2h_busy * 1e3:.2f} ms"
        f" | h2d/exec overlap {pct:.0f}% of exec time"
    )
