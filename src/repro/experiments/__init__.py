"""Reproduction harness: one module per paper table/figure.

Every experiment module exposes ``run(scale=...)`` returning a
structured result and ``render(result)`` producing the paper-style
text table/series.  ``scale='paper'`` uses the paper's problem sizes
(slow — hours of wall time through the Python DES), ``scale='quick'``
(default) uses reduced sizes that preserve the qualitative shape, and
``scale='tiny'`` exists for tests.  See DESIGN.md section 4 for the
experiment index and EXPERIMENTS.md for recorded results.
"""

from . import workloads
from . import metrics
from . import harness
from . import report
from . import fig1_tiling_effect
from . import table2_transfer_models
from . import table3_testbeds
from . import fig2_pipeline
from . import fig3_framework
from . import fig4_bts_validation
from . import fig5_dr_validation
from . import fig6_tile_selection
from . import fig7_performance
from . import table4_improvement
from . import summa
from . import repetition
from . import full_report

__all__ = [
    "workloads",
    "metrics",
    "harness",
    "report",
    "fig1_tiling_effect",
    "table2_transfer_models",
    "table3_testbeds",
    "fig2_pipeline",
    "fig3_framework",
    "fig4_bts_validation",
    "fig5_dr_validation",
    "fig6_tile_selection",
    "fig7_performance",
    "table4_improvement",
    "summa",
    "repetition",
    "full_report",
]
