"""Fig. 5: prediction-error distributions of the DR model vs CSO.

The DR model (Eq. 5) targets the data-reuse implementation: the
CoCoPeLia library's own sgemm/dgemm, which fetch each tile once.  Same
protocol as Fig. 4: measure every (validation problem, valid tile size)
pair and summarize both models' relative errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.registry import predict
from ..core.select import candidate_tiles
from ..runtime import CoCoPeLiaLibrary
from ..sim.machine import MachineConfig
from . import workloads
from .fig4_bts_validation import _subsample
from .harness import models_for, run_gemm, testbeds
from .metrics import ErrorDistribution, percent_error
from .report import format_table

MODELS = ("dr", "cso")


@dataclass
class Fig5Result:
    scale: str
    samples: Dict[Tuple[str, str, str], List[float]] = field(
        default_factory=dict)

    def distributions(self) -> List[ErrorDistribution]:
        return [
            ErrorDistribution.from_samples(
                f"{machine}/{routine}/{model}", vals
            )
            for (machine, routine, model), vals in sorted(self.samples.items())
        ]


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None,
        tiles_per_problem: int = 4) -> Fig5Result:
    machines = list(machines) if machines is not None else testbeds()
    result = Fig5Result(scale=scale)
    for machine in machines:
        models = models_for(machine, scale)
        cc = CoCoPeLiaLibrary(machine, models)
        for dtype, prefix in ((np.float64, "d"), (np.float32, "s")):
            for problem in workloads.gemm_validation_set(scale, dtype):
                tiles = _subsample(candidate_tiles(problem, models, clamped=False),
                                   tiles_per_problem)
                for t in tiles:
                    measured = run_gemm(cc, problem, tile_size=t).seconds
                    for model in MODELS:
                        err = percent_error(
                            predict(model, problem, t, models), measured
                        )
                        result.samples.setdefault(
                            (machine.name, f"{prefix}gemm", model), []
                        ).append(err)
    return result


def render(result: Fig5Result) -> str:
    rows = []
    for dist in result.distributions():
        rows.append([
            dist.label, dist.n, round(dist.median, 1), round(dist.mean, 1),
            round(dist.q1, 1), round(dist.q3, 1),
            round(dist.min, 1), round(dist.max, 1),
        ])
    return format_table(
        ["machine/routine/model", "n", "median e%", "mean e%", "q1", "q3",
         "min", "max"],
        rows,
        title="Fig. 5: DR vs CSO relative prediction error on the "
              "CoCoPeLia library (violin summary)",
    )
