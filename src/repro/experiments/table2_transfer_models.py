"""Table II: transfer sub-models for the two testbeds.

Runs the deployment transfer micro-benchmarks and reports the fitted
(t_l, 1/t_b, RSE, bidirectional 1/t_b, bidirectional RSE, sl) per
direction and testbed — alongside the simulated ground truth, which a
real deployment never sees but which this reproduction can use to
check the fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.transfer_model import LinkModel
from ..deploy.microbench import TransferBenchConfig, fit_link_model
from ..sim.machine import MachineConfig
from ..units import GIGA
from .harness import testbeds
from .report import format_table


@dataclass
class Table2Row:
    machine: str
    direction: str
    latency: float
    bandwidth_gb: float
    rse: float
    bandwidth_bid_gb: float
    rse_bid: float
    sl: float
    truth_bandwidth_gb: float
    truth_sl: float


@dataclass
class Table2Result:
    scale: str
    rows: List[Table2Row] = field(default_factory=list)
    links: dict = field(default_factory=dict)


def run(scale: str = "quick",
        machines: Optional[Sequence[MachineConfig]] = None) -> Table2Result:
    machines = list(machines) if machines is not None else testbeds()
    cfg = TransferBenchConfig() if scale == "paper" else TransferBenchConfig.quick()
    result = Table2Result(scale=scale)
    for machine in machines:
        link, _raw = fit_link_model(machine, cfg)
        result.links[machine.name] = link
        for direction, fit, truth in (
            ("h2d", link.h2d, machine.h2d),
            ("d2h", link.d2h, machine.d2h),
        ):
            result.rows.append(
                Table2Row(
                    machine=machine.name,
                    direction=direction,
                    latency=fit.latency,
                    bandwidth_gb=fit.bandwidth / GIGA,
                    rse=fit.rse,
                    bandwidth_bid_gb=fit.bandwidth / fit.sl / GIGA,
                    rse_bid=fit.rse_bid,
                    sl=fit.sl,
                    truth_bandwidth_gb=truth.bandwidth / GIGA,
                    truth_sl=truth.bid_slowdown,
                )
            )
    return result


def render(result: Table2Result) -> str:
    rows = [
        [
            r.machine, r.direction, f"{r.latency:.2e}",
            round(r.bandwidth_gb, 2), f"{r.rse:.2e}",
            round(r.bandwidth_bid_gb, 2), f"{r.rse_bid:.2e}",
            round(r.sl, 3), round(r.truth_bandwidth_gb, 2),
            round(r.truth_sl, 3),
        ]
        for r in result.rows
    ]
    return format_table(
        ["system", "dir", "t_l (s)", "1/t_b GB/s", "RSE",
         "1/t_b bid GB/s", "RSE bid", "sl", "truth GB/s", "truth sl"],
        rows,
        title="Table II: fitted transfer sub-models (vs simulator ground truth)",
    )
