"""Metrics used by the evaluation (Section V).

* the paper's relative prediction error
  ``e% = 100 * (t_predicted - t_measured) / t_measured``;
* distribution summaries for the violin plots (Figs. 4, 5);
* geometric-mean performance improvements (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError

# Tail-latency helpers live in repro.obs.stats — ONE quantile code path
# shared by the serve and cluster report builders; re-exported here for
# the historical import path (pinned by test_workloads_metrics.py).
from ..obs.stats import (  # noqa: F401  (re-export)
    LATENCY_PERCENTILES,
    latency_summary,
    percentiles,
)


def percent_error(predicted: float, measured: float) -> float:
    """The paper's e%: positive means overprediction."""
    if measured <= 0:
        raise ReproError(f"non-positive measured time: {measured}")
    return 100.0 * (predicted - measured) / measured


@dataclass(frozen=True)
class ErrorDistribution:
    """Summary of a relative-error sample (one violin in Figs. 4/5)."""

    label: str
    n: int
    median: float
    mean: float
    #: mean(|e|) over the samples — NOT |mean(e)|, which would let
    #: over- and under-predictions cancel out.
    mean_abs: float
    q1: float
    q3: float
    p5: float
    p95: float
    min: float
    max: float
    #: 99th percentile of the signed error — the far tail the serving
    #: stack's percentile-aware admission keys off.
    p99: float = 0.0

    @classmethod
    def from_samples(cls, label: str, samples: Sequence[float]
                     ) -> "ErrorDistribution":
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise ReproError(f"empty error sample for {label!r}")
        return cls(
            label=label,
            n=int(arr.size),
            median=float(np.median(arr)),
            mean=float(arr.mean()),
            mean_abs=float(np.abs(arr).mean()),
            q1=float(np.percentile(arr, 25)),
            q3=float(np.percentile(arr, 75)),
            p5=float(np.percentile(arr, 5)),
            p95=float(np.percentile(arr, 95)),
            min=float(arr.min()),
            max=float(arr.max()),
            p99=float(np.percentile(arr, 99)),
        )

    def tail_quantiles(self) -> dict:
        """The p50/p95/p99 trio tail-aware consumers read, keyed the
        same way the serve/cluster latency summaries are."""
        return {"p50": self.median, "p95": self.p95, "p99": self.p99}


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def geomean_improvement_pct(speedups: Sequence[float]) -> float:
    """Geometric-mean percentage improvement from per-problem speedup
    ratios, computed as the paper does for Table IV: the geometric mean
    of the speedups, reported as a percentage gain over the baseline."""
    return 100.0 * (geomean(speedups) - 1.0)


def speedup(time_baseline: float, time_new: float) -> float:
    """> 1 means ``new`` is faster."""
    if time_new <= 0 or time_baseline <= 0:
        raise ReproError("speedup requires positive times")
    return time_baseline / time_new


def overlap_summary(trace, predicted_seconds: Optional[float] = None,
                    model: Optional[str] = None) -> dict:
    """Achieved-overlap report for one traced run, as a plain dict.

    Bridges the evaluation layer to the observability profiler: the
    achieved ``t_total`` takes the *measured* slot of :func:`percent_error`
    and the model prediction the *predicted* slot, so the delta reported
    here is the same e% metric as the Figs. 4/5 validation — but against
    the simulator's own event stream instead of an end-to-end timer.

    Imported lazily so ``repro.experiments`` keeps working without the
    observability package (and to keep the layering one-directional).
    """
    from ..obs.profiler import profile_trace

    report = profile_trace(trace, predicted_seconds=predicted_seconds,
                           model=model)
    return report.as_dict()
