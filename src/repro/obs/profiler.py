"""Overlap profiler: from event streams to achieved-overlap reports.

The paper's models *predict* ``t_total`` from an overlap hypothesis;
this module *measures* what a run actually achieved, from the same
:class:`~repro.sim.trace.TraceRecorder` stream the Fig. 2 renderer
uses.  For each engine it computes busy/idle spans; across engines it
computes the achieved overlap fraction, an overlap-efficiency score,
and a critical-path decomposition of the makespan; and given a model
prediction it reports the achieved-vs-predicted delta in the paper's
``e%`` metric.

Definitions (``T = t_end - t_start`` is the trace extent):

* ``busy_spans[e]``: the union of engine ``e``'s event intervals;
  ``idle_spans[e]`` is its complement within ``[t_start, t_end]``.
  Per engine, busy + idle spans partition the extent exactly.
* ``overlap_time``: total time during which >= 2 engines were busy
  simultaneously; ``overlap_fraction = overlap_time / T`` (in [0, 1]).
* ``overlap_efficiency``: ``(sum_busy - T) / (sum_busy - max_busy)``
  — 1 when the pipeline is as overlapped as the busiest engine allows
  (``T == max_busy``), 0 when fully serialized (``T == sum_busy``).
* ``critical_path``: the makespan partitioned into ``compute`` (exec
  engine busy), ``exposed_transfer`` (some transfer engine busy while
  exec is idle), and ``idle`` (no engine busy — backoff gaps, pipeline
  stalls).  The three parts sum to ``T``.

The profile *document* (report + metrics registry snapshot + run
context) is what ``repro profile`` emits; its schema is documented in
:data:`PROFILE_SCHEMA_VERSION` / DESIGN.md section 6c and enforced by
:func:`validate_profile_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..sim.trace import TraceEvent, TraceRecorder

Span = Tuple[float, float]

PROFILE_SCHEMA_VERSION = "repro.profile/v1"


# ---------------------------------------------------------------------------
# span algebra
# ---------------------------------------------------------------------------

def merge_spans(intervals: Iterable[Span]) -> List[Span]:
    """Union of closed intervals, as sorted disjoint spans."""
    spans = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Span] = []
    for s, e in spans:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def spans_total(spans: Iterable[Span]) -> float:
    return sum(e - s for s, e in spans)


def complement_spans(spans: Sequence[Span], t0: float, t1: float
                     ) -> List[Span]:
    """Gaps of disjoint sorted ``spans`` within ``[t0, t1]``."""
    gaps: List[Span] = []
    cursor = t0
    for s, e in spans:
        if s > cursor:
            gaps.append((cursor, s))
        cursor = max(cursor, e)
    if t1 > cursor:
        gaps.append((cursor, t1))
    return gaps


def _sweep(per_engine: Dict[str, List[Span]], t0: float, t1: float,
           exec_engines: Sequence[str]) -> Tuple[float, float, float, float]:
    """One boundary sweep: (overlap_time, compute, exposed_transfer, idle).

    ``overlap_time`` is the total length where >= 2 engines are busy;
    the last three partition ``[t0, t1]`` by whether an exec engine is
    busy, only non-exec engines are busy, or nothing is.
    """
    bounds = {t0, t1}
    for spans in per_engine.values():
        for s, e in spans:
            bounds.add(s)
            bounds.add(e)
    ordered = sorted(bounds)
    overlap = compute = exposed = idle = 0.0
    exec_set = set(exec_engines)
    for lo, hi in zip(ordered, ordered[1:]):
        if hi <= t0 or lo >= t1:
            continue
        lo, hi = max(lo, t0), min(hi, t1)
        width = hi - lo
        mid = (lo + hi) / 2.0
        busy = [name for name, spans in per_engine.items()
                if any(s <= mid < e for s, e in spans)]
        if len(busy) >= 2:
            overlap += width
        if any(name in exec_set for name in busy):
            compute += width
        elif busy:
            exposed += width
        else:
            idle += width
    return overlap, compute, exposed, idle


# ---------------------------------------------------------------------------
# report structures
# ---------------------------------------------------------------------------

@dataclass
class EngineProfile:
    """Busy/idle accounting for one engine over the trace extent."""

    engine: str
    events: int
    busy_spans: List[Span]
    idle_spans: List[Span]
    busy_time: float
    idle_time: float
    utilization: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "busy_time": self.busy_time,
            "idle_time": self.idle_time,
            "utilization": self.utilization,
            "busy_spans": [list(s) for s in self.busy_spans],
            "idle_spans": [list(s) for s in self.idle_spans],
        }


@dataclass
class ProfileReport:
    """What one traced run achieved (see module docstring)."""

    t_start: float
    t_end: float
    t_total: float
    engines: Dict[str, EngineProfile]
    total_busy_time: float
    overlap_time: float
    overlap_fraction: float
    overlap_efficiency: float
    critical_path: Dict[str, float]
    traffic: Dict[str, float]
    predicted_seconds: Optional[float] = None
    model: Optional[str] = None
    prediction_error_pct: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        prediction = None
        if self.predicted_seconds is not None:
            prediction = {
                "predicted_seconds": self.predicted_seconds,
                "model": self.model,
                "error_pct": self.prediction_error_pct,
            }
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "t_total": self.t_total,
            "engines": {name: prof.as_dict()
                        for name, prof in sorted(self.engines.items())},
            "total_busy_time": self.total_busy_time,
            "overlap_time": self.overlap_time,
            "overlap_fraction": self.overlap_fraction,
            "overlap_efficiency": self.overlap_efficiency,
            "critical_path": dict(self.critical_path),
            "traffic": dict(self.traffic),
            "prediction": prediction,
        }


def profile_trace(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    predicted_seconds: Optional[float] = None,
    model: Optional[str] = None,
) -> ProfileReport:
    """Profile one event stream (see module docstring for definitions).

    Engines whose name is or ends with ``exec`` (e.g. ``gpu1/exec`` in
    a merged multi-GPU stream) count as compute engines for the
    critical-path decomposition; everything else is a transfer engine.
    """
    events = (list(trace.events) if isinstance(trace, TraceRecorder)
              else list(trace))
    if not events:
        raise ReproError("cannot profile an empty trace")
    t0 = min(ev.start for ev in events)
    t1 = max(ev.end for ev in events)
    t_total = t1 - t0

    per_engine_events: Dict[str, List[TraceEvent]] = {}
    for ev in events:
        per_engine_events.setdefault(ev.engine, []).append(ev)

    engines: Dict[str, EngineProfile] = {}
    per_engine_spans: Dict[str, List[Span]] = {}
    for name, evs in per_engine_events.items():
        busy = merge_spans((ev.start, ev.end) for ev in evs)
        idle = complement_spans(busy, t0, t1)
        busy_time = spans_total(busy)
        per_engine_spans[name] = busy
        engines[name] = EngineProfile(
            engine=name,
            events=len(evs),
            busy_spans=busy,
            idle_spans=idle,
            busy_time=busy_time,
            idle_time=spans_total(idle),
            utilization=busy_time / t_total if t_total > 0 else 0.0,
        )

    exec_engines = [n for n in per_engine_spans
                    if n == "exec" or n.endswith("/exec")]
    overlap, compute, exposed, idle = _sweep(
        per_engine_spans, t0, t1, exec_engines)
    sum_busy = sum(p.busy_time for p in engines.values())
    max_busy = max(p.busy_time for p in engines.values())
    if t_total <= 0:
        fraction, efficiency = 0.0, 1.0
    else:
        fraction = min(max(overlap / t_total, 0.0), 1.0)
        denom = sum_busy - max_busy
        if denom <= 0:
            efficiency = 1.0  # one engine did everything: nothing to overlap
        else:
            efficiency = min(max((sum_busy - t_total) / denom, 0.0), 1.0)

    error_pct = None
    if predicted_seconds is not None and t_total > 0:
        error_pct = 100.0 * (predicted_seconds - t_total) / t_total

    return ProfileReport(
        t_start=t0,
        t_end=t1,
        t_total=t_total,
        engines=engines,
        total_busy_time=sum_busy,
        overlap_time=overlap,
        overlap_fraction=fraction,
        overlap_efficiency=efficiency,
        critical_path={
            "compute": compute,
            "exposed_transfer": exposed,
            "idle": idle,
        },
        traffic={
            "events": len(events),
            "h2d_bytes": sum(ev.nbytes for ev in events
                             if "h2d" in ev.engine),
            "d2h_bytes": sum(ev.nbytes for ev in events
                             if "d2h" in ev.engine),
            "flops": sum(ev.flops for ev in events),
        },
        predicted_seconds=predicted_seconds,
        model=model,
        prediction_error_pct=error_pct,
    )


def merge_traces(traces: Sequence[TraceRecorder],
                 labels: Optional[Sequence[str]] = None) -> List[TraceEvent]:
    """One event stream from many devices, engines prefixed per device.

    With labels ``["gpu0", "gpu1"]`` (the default), engine ``h2d`` of
    device 1 becomes ``gpu1/h2d``.  A single trace passes through with
    unprefixed engine names.
    """
    if labels is None:
        labels = [f"gpu{g}" for g in range(len(traces))]
    if len(labels) != len(traces):
        raise ReproError("merge_traces: one label per trace required")
    if len(traces) == 1:
        return list(traces[0].events)
    merged: List[TraceEvent] = []
    for label, trace in zip(labels, traces):
        for ev in trace.events:
            merged.append(TraceEvent(
                engine=f"{label}/{ev.engine}", tag=ev.tag,
                start=ev.start, end=ev.end,
                nbytes=ev.nbytes, flops=ev.flops,
            ))
    merged.sort(key=lambda ev: (ev.end, ev.start))
    return merged


def merge_chrome_traces(
    traces: Sequence[TraceRecorder],
    labels: Optional[Sequence[str]] = None,
    time_unit: float = 1e-6,
) -> List[dict]:
    """Chrome trace-event export of many devices in one timeline.

    Each device becomes a Chrome "process" (pid) with its engines as
    threads, so ``chrome://tracing`` / Perfetto shows the shared-clock
    multi-GPU pipeline stacked per device.  With one trace this is the
    single-device export plus process metadata.
    """
    if labels is None:
        labels = [f"gpu{g}" for g in range(len(traces))]
    if len(labels) != len(traces):
        raise ReproError("merge_chrome_traces: one label per trace required")
    out: List[dict] = []
    for pid, (label, trace) in enumerate(zip(labels, traces), start=1):
        out.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
        for tid, engine in enumerate(trace.engines()):
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": engine},
            })
            for ev in trace.by_engine(engine):
                out.append({
                    "name": ev.tag or engine,
                    "cat": engine,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": ev.start / time_unit,
                    "dur": ev.duration / time_unit,
                    "args": {"nbytes": ev.nbytes, "flops": ev.flops},
                })
    return out


# ---------------------------------------------------------------------------
# the profile document and its schema
# ---------------------------------------------------------------------------

def profile_document(
    report: ProfileReport,
    metrics: Optional[object] = None,
    context: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON document ``repro profile`` emits (schema v1)."""
    doc: Dict[str, object] = {
        "schema": PROFILE_SCHEMA_VERSION,
        "context": dict(context or {}),
        "report": report.as_dict(),
        "metrics": (metrics.as_dict() if metrics is not None
                    else {"counters": {}, "gauges": {}, "histograms": {}}),
    }
    validate_profile_json(doc)
    return doc


def _fail(path: str, message: str) -> None:
    raise ReproError(f"invalid profile document at {path}: {message}")


def _expect(doc: dict, path: str, key: str, types, allow_none=False):
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if value is None:
        if allow_none:
            return None
        _fail(f"{path}.{key}", "must not be null")
    if isinstance(value, bool) or not isinstance(value, types):
        names = getattr(types, "__name__", None) or "/".join(
            t.__name__ for t in types)
        _fail(f"{path}.{key}", f"expected {names}, got {type(value).__name__}")
    return value


def _expect_number(doc: dict, path: str, key: str, allow_none=False):
    return _expect(doc, path, key, (int, float), allow_none=allow_none)


def _expect_spans(doc: dict, path: str, key: str) -> None:
    spans = _expect(doc, path, key, list)
    for i, span in enumerate(spans):
        if (not isinstance(span, list) or len(span) != 2
                or any(isinstance(v, bool) or not isinstance(v, (int, float))
                       for v in span)):
            _fail(f"{path}.{key}[{i}]", "expected a [start, end] number pair")


def validate_profile_json(doc: object) -> None:
    """Check a profile document against schema v1; raise on mismatch.

    The error message carries the JSON path of the first offending
    field, so CI smoke jobs report precisely what drifted.
    """
    if not isinstance(doc, dict):
        _fail("$", f"expected an object, got {type(doc).__name__}")
    schema = _expect(doc, "$", "schema", str)
    if schema != PROFILE_SCHEMA_VERSION:
        _fail("$.schema", f"expected {PROFILE_SCHEMA_VERSION!r}, "
                          f"got {schema!r}")
    _expect(doc, "$", "context", dict)

    report = _expect(doc, "$", "report", dict)
    for key in ("t_start", "t_end", "t_total", "total_busy_time",
                "overlap_time", "overlap_fraction", "overlap_efficiency"):
        _expect_number(report, "$.report", key)
    for key in ("overlap_fraction", "overlap_efficiency"):
        value = report[key]
        if not 0.0 <= value <= 1.0:
            _fail(f"$.report.{key}", f"must be in [0, 1], got {value}")
    engines = _expect(report, "$.report", "engines", dict)
    for name, prof in engines.items():
        path = f"$.report.engines.{name}"
        if not isinstance(prof, dict):
            _fail(path, "expected an object")
        _expect(prof, path, "events", int)
        for key in ("busy_time", "idle_time", "utilization"):
            _expect_number(prof, path, key)
        _expect_spans(prof, path, "busy_spans")
        _expect_spans(prof, path, "idle_spans")
    critical = _expect(report, "$.report", "critical_path", dict)
    for key in ("compute", "exposed_transfer", "idle"):
        _expect_number(critical, "$.report.critical_path", key)
    traffic = _expect(report, "$.report", "traffic", dict)
    for key in ("events", "h2d_bytes", "d2h_bytes", "flops"):
        _expect_number(traffic, "$.report.traffic", key)
    prediction = report.get("prediction")
    if prediction is not None:
        if not isinstance(prediction, dict):
            _fail("$.report.prediction", "expected an object or null")
        _expect_number(prediction, "$.report.prediction", "predicted_seconds")
        _expect(prediction, "$.report.prediction", "model", str,
                allow_none=True)
        _expect_number(prediction, "$.report.prediction", "error_pct",
                       allow_none=True)

    metrics = _expect(doc, "$", "metrics", dict)
    counters = _expect(metrics, "$.metrics", "counters", dict)
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"$.metrics.counters.{name}", "expected a number")
        if value < 0:
            _fail(f"$.metrics.counters.{name}",
                  f"counters are non-negative, got {value}")
    gauges = _expect(metrics, "$.metrics", "gauges", dict)
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"$.metrics.gauges.{name}", "expected a number")
    histograms = _expect(metrics, "$.metrics", "histograms", dict)
    for name, hist in histograms.items():
        path = f"$.metrics.histograms.{name}"
        if not isinstance(hist, dict):
            _fail(path, "expected an object")
        bounds = _expect(hist, path, "bounds", list)
        buckets = _expect(hist, path, "bucket_counts", list)
        if len(buckets) != len(bounds) + 1:
            _fail(f"{path}.bucket_counts",
                  f"expected {len(bounds) + 1} buckets "
                  f"(len(bounds) + overflow), got {len(buckets)}")
        count = _expect(hist, path, "count", int)
        if sum(buckets) != count:
            _fail(f"{path}.count",
                  f"bucket counts sum to {sum(buckets)}, count says {count}")
        _expect_number(hist, path, "sum")
        _expect_number(hist, path, "min", allow_none=True)
        _expect_number(hist, path, "max", allow_none=True)
