"""Observability layer: metrics registry, overlap profiler, trace verifier.

Three consumers of one substrate.  The simulator and runtime emit a
:class:`~repro.sim.trace.TraceRecorder` event stream and (optionally)
update a :class:`MetricsRegistry`; this package turns those into

* live counters/gauges/histograms (:mod:`repro.obs.metrics`),
* achieved-overlap reports and merged Chrome traces
  (:mod:`repro.obs.profiler`, the ``repro profile`` CLI), and
* machine-checked structural invariants (:mod:`repro.obs.verify`,
  the ``check_trace`` pytest fixture).

This package depends only on :mod:`repro.errors` and
:mod:`repro.sim.trace`; the runtime layers never import it — they take
an optional duck-typed ``metrics`` object instead — so observability
stays strictly optional.
"""

from .metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from .profiler import (
    PROFILE_SCHEMA_VERSION,
    EngineProfile,
    ProfileReport,
    complement_spans,
    merge_chrome_traces,
    merge_spans,
    merge_traces,
    profile_document,
    profile_trace,
    spans_total,
    validate_profile_json,
)
from .stats import LATENCY_PERCENTILES, latency_summary, percentiles
from .verify import (
    FAULT_SUFFIX,
    find_conservation_violations,
    find_request_violations,
    find_violations,
    fluid_span,
    kernel_deps,
    split_fault,
    transfer_tile,
    verify_requests,
    verify_trace,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "PROFILE_SCHEMA_VERSION",
    "EngineProfile",
    "ProfileReport",
    "complement_spans",
    "merge_chrome_traces",
    "merge_spans",
    "merge_traces",
    "profile_document",
    "profile_trace",
    "spans_total",
    "validate_profile_json",
    "LATENCY_PERCENTILES",
    "latency_summary",
    "percentiles",
    "FAULT_SUFFIX",
    "find_conservation_violations",
    "find_request_violations",
    "find_violations",
    "kernel_deps",
    "fluid_span",
    "split_fault",
    "transfer_tile",
    "verify_requests",
    "verify_trace",
]
