"""Machine-checking of recorded event streams.

A :class:`~repro.sim.trace.TraceRecorder` stream from a well-behaved
run must satisfy structural invariants regardless of machine, problem,
or fault plan.  This module checks them:

``well-formed``
    Every event has ``end >= start``, non-negative ``nbytes`` and
    ``flops``, and a non-empty engine name.
``completion-order``
    The recorder appends events at their completion time on one shared
    simulated clock, so event ``end`` times are non-decreasing in
    record order.  Collapsed fluid spans (below) are exempt: a window
    that bails is recorded at bail time, after events that completed
    later than the span's analytic end.
``fluid-span``
    A fluid-mode simulator records each collapsed transfer window as
    one synthetic marker event tagged ``fluid:<engine>#<count>``
    spanning the whole window.  The embedded engine name must match
    the recording engine and the collapsed count must be positive.
    Fluid spans are real busy intervals (``engine-exclusive`` still
    applies) but carry no per-tile tags, so ``tile-order`` and
    ``fault-matched`` skip them by construction.
``engine-exclusive``
    Each engine runs one job at a time: busy intervals on one engine
    never overlap.
``tile-order``
    Per-tile data dependencies, parsed from the scheduler's tags: a
    kernel reading tile ``X`` must start at or after the first
    successful ``h2d`` of ``X`` ends, and a ``d2h`` writeback of ``X``
    must start at or after every successful kernel writing ``X`` ends.
``fault-matched``
    An event tagged ``...!fault`` is a failed attempt; the retry
    machinery must eventually land a successful event with the same
    base tag on the same engine (unless the retry budget was exhausted
    — pass ``allow_unmatched_faults=True`` for runs that may degrade
    to the host fallback).

Serving runs add two per-request invariants over request lifecycle
records (:func:`find_request_violations` / :func:`verify_requests`):

``request-lifecycle``
    A completed request's timestamps are monotone:
    ``enqueue <= dispatch <= first event <= completion``.
``request-exclusive``
    A worker executes one batch at a time: the ``[dispatch,
    completion]`` spans of *distinct batches* on one worker never
    overlap (requests coalesced into the same batch share their span).

The checker is exposed as a library API (:func:`verify_trace`,
:func:`find_violations`) and as the ``check_trace`` pytest fixture in
``tests/conftest.py``; the fixture forwards ``requests=`` so serve
tests verify both the device event streams and the request lifecycles
in one call.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..errors import TraceInvariantError
from ..sim.trace import TraceEvent, TraceRecorder

FAULT_SUFFIX = "!fault"

_KERNEL_2D = re.compile(r"^(\w+)\((\d+),(\d+)\)$")
_KERNEL_3D = re.compile(r"^(\w+)\((\d+),(\d+),(\d+)\)$")
_KERNEL_1D = re.compile(r"^(\w+)\[(\d+)\]$")
_FLUID_SPAN = re.compile(r"^fluid:(\w+)#(\d+)$")


def fluid_span(tag: str) -> Optional[Tuple[str, int]]:
    """``("h2d", 12)`` for the collapsed-window marker ``"fluid:h2d#12"``.

    Returns ``None`` for ordinary (per-transfer / per-kernel) tags.
    """
    m = _FLUID_SPAN.match(tag)
    if m:
        return m.group(1), int(m.group(2))
    return None


def split_fault(tag: str) -> Tuple[str, bool]:
    """``("gemm(0,1,2)", True)`` for ``"gemm(0,1,2)!fault"``."""
    if tag.endswith(FAULT_SUFFIX):
        return tag[: -len(FAULT_SUFFIX)], True
    return tag, False


def transfer_tile(tag: str) -> Optional[str]:
    """The tile a transfer tag moves (``"h2d:A(0,1)"`` -> ``"A(0,1)"``)."""
    for prefix in ("h2d:", "d2h:"):
        if tag.startswith(prefix):
            return tag[len(prefix):]
    return None


def kernel_deps(tag: str) -> Optional[Tuple[Set[str], Set[str]]]:
    """(reads, writes) tile sets for a scheduler kernel tag.

    Returns ``None`` for tags the schedulers do not emit (hand-built
    traces, microbenchmarks) — those kernels carry no checkable data
    dependencies.
    """
    m = _KERNEL_3D.match(tag)
    if m:
        name, i, j, l = m.group(1), m.group(2), m.group(3), m.group(4)
        if name == "gemm":
            return ({f"A({i},{l})", f"B({l},{j})", f"C({i},{j})"},
                    {f"C({i},{j})"})
        if name == "syrk":
            return ({f"A({i},{l})", f"A({j},{l})", f"C({i},{j})"},
                    {f"C({i},{j})"})
        return None
    m = _KERNEL_2D.match(tag)
    if m:
        name, i, j = m.group(1), m.group(2), m.group(3)
        if name == "gemv":
            return ({f"A({i},{j})", f"x[{j}]", f"y[{i}]"}, {f"y[{i}]"})
        return None
    m = _KERNEL_1D.match(tag)
    if m:
        name, i = m.group(1), m.group(2)
        if name == "axpy":
            return ({f"x[{i}]", f"y[{i}]"}, {f"y[{i}]"})
        return None
    return None


def _events(trace: Union[TraceRecorder, Iterable[TraceEvent]]
            ) -> List[TraceEvent]:
    if isinstance(trace, TraceRecorder):
        return list(trace.events)
    return list(trace)


def find_violations(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    allow_unmatched_faults: bool = False,
    eps: float = 1e-12,
) -> List[Tuple[str, str]]:
    """All invariant violations as ``(invariant, message)`` pairs."""
    events = _events(trace)
    violations: List[Tuple[str, str]] = []

    # -- well-formed ----------------------------------------------------
    for idx, ev in enumerate(events):
        if not ev.engine:
            violations.append((
                "well-formed", f"event #{idx} ({ev.tag!r}) has no engine"))
        if ev.end < ev.start:
            violations.append((
                "well-formed",
                f"event #{idx} ({ev.tag!r} on {ev.engine}) ends before it "
                f"starts: start={ev.start}, end={ev.end}"))
        if ev.nbytes < 0:
            violations.append((
                "well-formed",
                f"event #{idx} ({ev.tag!r} on {ev.engine}) has negative "
                f"nbytes: {ev.nbytes}"))
        if ev.flops < 0:
            violations.append((
                "well-formed",
                f"event #{idx} ({ev.tag!r} on {ev.engine}) has negative "
                f"flops: {ev.flops}"))

    # -- fluid-span -----------------------------------------------------
    for idx, ev in enumerate(events):
        span = fluid_span(ev.tag)
        if span is None:
            continue
        engine, count = span
        if engine != ev.engine:
            violations.append((
                "fluid-span",
                f"event #{idx} ({ev.tag!r}) recorded on engine "
                f"{ev.engine!r} but names engine {engine!r}"))
        if count < 1:
            violations.append((
                "fluid-span",
                f"event #{idx} ({ev.tag!r}) collapses {count} transfers "
                f"(expected >= 1)"))

    # -- completion-order ----------------------------------------------
    # Collapsed fluid spans are recorded at window close/bail, which can
    # postdate later-completing events; they are exempt on both sides.
    prev = None
    for idx, cur in enumerate(events):
        if fluid_span(cur.tag) is not None:
            continue
        if prev is not None and cur.end < prev.end - eps:
            violations.append((
                "completion-order",
                f"event #{idx} ({cur.tag!r} on {cur.engine}) completed at "
                f"{cur.end} but was recorded after "
                f"({prev.tag!r}) completing at {prev.end}"))
        prev = cur

    # -- engine-exclusive -----------------------------------------------
    by_engine = {}
    for ev in events:
        by_engine.setdefault(ev.engine, []).append(ev)
    for engine, evs in by_engine.items():
        ordered = sorted(evs, key=lambda e: (e.start, e.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end - eps:
                violations.append((
                    "engine-exclusive",
                    f"engine {engine!r} overlaps itself: {prev.tag!r} "
                    f"[{prev.start}, {prev.end}] and {cur.tag!r} "
                    f"[{cur.start}, {cur.end}]"))

    # -- tile-order -----------------------------------------------------
    first_fetch_end = {}  # tile -> end of its first successful h2d
    for ev in events:
        base, fault = split_fault(ev.tag)
        tile = transfer_tile(base)
        if tile is not None and not fault and base.startswith("h2d:"):
            if tile not in first_fetch_end or ev.end < first_fetch_end[tile]:
                first_fetch_end[tile] = ev.end
    kernel_writes = {}  # tile -> latest end of a successful writing kernel
    for ev in events:
        base, fault = split_fault(ev.tag)
        if fault:
            continue
        deps = kernel_deps(base)
        if deps is None:
            continue
        reads, writes = deps
        for tile in reads:
            fetched = first_fetch_end.get(tile)
            if fetched is not None and ev.start < fetched - eps:
                violations.append((
                    "tile-order",
                    f"kernel {base!r} started at {ev.start} before the "
                    f"first successful h2d of {tile!r} completed at "
                    f"{fetched}"))
        for tile in writes:
            kernel_writes[tile] = max(kernel_writes.get(tile, 0.0), ev.end)
    for ev in events:
        base, _fault = split_fault(ev.tag)
        tile = transfer_tile(base)
        if tile is None or not base.startswith("d2h:"):
            continue
        last_write = kernel_writes.get(tile)
        if last_write is not None and ev.start < last_write - eps:
            violations.append((
                "tile-order",
                f"writeback {base!r} started at {ev.start} before the last "
                f"kernel writing {tile!r} completed at {last_write}"))

    # -- fault-matched --------------------------------------------------
    if not allow_unmatched_faults:
        for idx, ev in enumerate(events):
            base, fault = split_fault(ev.tag)
            if not fault:
                continue
            matched = any(
                later.engine == ev.engine and later.tag == base
                for later in events[idx + 1:]
            )
            if not matched:
                violations.append((
                    "fault-matched",
                    f"failed attempt {base!r} on {ev.engine} at "
                    f"t={ev.start} has no subsequent successful retry"))

    return violations


def find_request_violations(
    requests: Iterable[object],
    eps: float = 1e-12,
) -> List[Tuple[str, str]]:
    """Per-request invariant violations as ``(invariant, message)`` pairs.

    ``requests`` are duck-typed lifecycle records — anything with
    ``req_id``, ``worker``, ``batch_id``, ``enqueue_t``, ``dispatch_t``,
    ``first_t`` and ``completion_t`` attributes (e.g.
    :class:`repro.serve.request.Request`).  Requests that never
    completed (shed, failed, still queued) carry no complete span and
    are only checked for the monotonicity of whatever timestamps they
    do have.
    """
    violations: List[Tuple[str, str]] = []
    completed = []
    for req in requests:
        rid = getattr(req, "req_id", "?")
        stamps = [("enqueue", getattr(req, "enqueue_t", None)),
                  ("dispatch", getattr(req, "dispatch_t", None)),
                  ("first event", getattr(req, "first_t", None)),
                  ("completion", getattr(req, "completion_t", None))]
        present = [(name, t) for name, t in stamps if t is not None]
        for (n1, t1), (n2, t2) in zip(present, present[1:]):
            if t2 < t1 - eps:
                violations.append((
                    "request-lifecycle",
                    f"request #{rid}: {n2} at {t2} precedes {n1} at {t1}"))
        if stamps[3][1] is not None and stamps[1][1] is not None:
            completed.append(req)

    by_worker = {}
    for req in completed:
        worker = getattr(req, "worker", None)
        if worker is not None:
            by_worker.setdefault(worker, []).append(req)
    for worker, reqs in sorted(by_worker.items()):
        spans = {}  # batch_id -> (start, end, req_id)
        for req in reqs:
            key = (req.batch_id if getattr(req, "batch_id", None) is not None
                   else ("solo", req.req_id))
            start, end = req.dispatch_t, req.completion_t
            if key in spans:
                s0, e0, _ = spans[key]
                spans[key] = (min(s0, start), max(e0, end), spans[key][2])
            else:
                spans[key] = (start, end, req.req_id)
        ordered = sorted(spans.values())
        for (s1, e1, r1), (s2, e2, r2) in zip(ordered, ordered[1:]):
            if s2 < e1 - eps:
                violations.append((
                    "request-exclusive",
                    f"worker {worker!r} overlaps itself: request #{r1} "
                    f"[{s1}, {e1}] and request #{r2} [{s2}, {e2}] are in "
                    f"different batches"))
    return violations


def find_conservation_violations(
    requests: Iterable[object],
) -> List[Tuple[str, str]]:
    """Request-conservation violations as ``(invariant, message)`` pairs.

    Chaos runs drain failing fault domains, requeue their work, and may
    hedge a request onto two workers at once.  Whatever the failure
    pattern, every request offered to the server must end in **exactly
    one** terminal state — done, shed, or failed — and must have
    completed exactly once iff that state is done.  Anything else means
    a drain or hedge lost the request (stuck queued/running, zero
    completions) or double-served it (two completions).

    Cluster runs add *migration*: a node drain may hand a request off
    to another node, leaving a node-local view in state ``MIGRATED``.
    Views sharing one ``req_id`` are therefore folded into a single
    fleet-wide request: exactly one view must reach a real terminal
    state (done/shed/failed), migrated views must carry zero
    completions, and total completions across all views must be 1 iff
    the terminal state is done.  Single-node callers passing one view
    per request get the historical per-request messages unchanged.

    ``requests`` are duck-typed: anything with ``state`` (whose
    ``.name`` is one of the :class:`repro.serve.request.RequestState`
    names) and an integer ``completions`` counter.  Views without a
    ``req_id`` are never folded together.
    """
    terminal_names = ("DONE", "SHED", "FAILED")
    violations: List[Tuple[str, str]] = []
    groups: dict = {}  # key -> [(state name, completions), ...]
    anon = 0
    for req in requests:
        rid = getattr(req, "req_id", None)
        if rid is None:
            key = ("anon", anon)
            anon += 1
        else:
            key = ("id", rid)
        state = getattr(req, "state", None)
        name = getattr(state, "name", str(state))
        groups.setdefault(key, []).append(
            (name, getattr(req, "completions", 0)))
    for key, views in groups.items():
        rid = key[1] if key[0] == "id" else "?"
        names = [name for name, _ in views]
        total = sum(c for _, c in views)
        terminal = [n for n in names if n in terminal_names]
        for name, completions in views:
            if name == "MIGRATED" and completions != 0:
                violations.append((
                    "request-conservation",
                    f"request #{rid}: MIGRATED view completed "
                    f"{completions} times (a handoff carries no "
                    f"completions)"))
        stray = [n for n in names
                 if n not in terminal_names and n != "MIGRATED"]
        if stray:
            violations.append((
                "request-conservation",
                f"request #{rid}: non-terminal final state {stray[0]} "
                f"(lost by a drain or hedge)"))
            continue
        if not terminal:
            # every view migrated away and nobody finished the job
            violations.append((
                "request-conservation",
                f"request #{rid}: migrated off every node but never "
                f"re-served (lost in migration)"))
            continue
        if len(terminal) > 1:
            violations.append((
                "request-conservation",
                f"request #{rid}: {len(terminal)} terminal views "
                f"({', '.join(terminal)}) — served on multiple nodes"))
            continue
        final = terminal[0]
        if final == "DONE" and total != 1:
            violations.append((
                "request-conservation",
                f"request #{rid}: DONE with {total} completions "
                f"(expected exactly 1)"))
        elif final != "DONE" and total != 0:
            violations.append((
                "request-conservation",
                f"request #{rid}: {final} yet completed "
                f"{total} times"))
    return violations


def verify_requests(requests: Iterable[object], eps: float = 1e-12) -> None:
    """Raise :class:`TraceInvariantError` on the first request violation."""
    violations = find_request_violations(requests, eps=eps)
    if violations:
        invariant, message = violations[0]
        raise TraceInvariantError(invariant, message)


def verify_trace(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    allow_unmatched_faults: bool = False,
    eps: float = 1e-12,
    requests: Optional[Iterable[object]] = None,
) -> None:
    """Raise :class:`TraceInvariantError` on the first violation.

    ``requests`` optionally adds the per-request serving invariants
    (:func:`find_request_violations`) to the structural trace checks.
    """
    violations = find_violations(
        trace, allow_unmatched_faults=allow_unmatched_faults, eps=eps)
    if requests is not None:
        violations += find_request_violations(requests, eps=eps)
    if violations:
        invariant, message = violations[0]
        raise TraceInvariantError(invariant, message)
