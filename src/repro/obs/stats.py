"""Shared latency/percentile math for report builders.

One quantile code path for every versioned report: the serving layer
(``repro.serve/v1``), the cluster layer (``repro.cluster/v1``) and the
experiment metrics all call :func:`percentiles` / :func:`latency_summary`
from here, so a p99 in one document is bit-for-bit the same statistic
as a p99 in any other.  (:mod:`repro.experiments.metrics` re-exports
these names for backward compatibility; the regression test in
``tests/experiments/test_workloads_metrics.py`` pins that both import
paths are the same objects and that the math never forks.)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ReproError

#: Tail percentiles the serving and cluster layers report (p50/p95/p99).
LATENCY_PERCENTILES = (50, 95, 99)


def percentiles(samples: Sequence[float],
                ps: Sequence[float] = LATENCY_PERCENTILES
                ) -> List[float]:
    """Per-percentile values of a sample, linearly interpolated.

    Uses numpy's default ``linear`` interpolation so e.g. the p50 of an
    even-sized sample is the midpoint average — matching
    :class:`~repro.experiments.metrics.ErrorDistribution` and the usual
    latency-report convention.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("percentiles of an empty sample")
    # Coerce the requested percentiles once; reject NaN/inf explicitly.
    # (The old per-p `0 <= p <= 100` check happened to reject NaN only
    # because chained comparisons with NaN are False — make the intent
    # unmissable and the error message name the offending value.)
    ps = list(ps)
    coerced = np.asarray(ps, dtype=np.float64)
    for p, f in zip(ps, coerced):
        if not np.isfinite(f) or not 0.0 <= f <= 100.0:
            raise ReproError(f"percentile outside [0, 100]: {p}")
    return [float(v) for v in np.percentile(arr, coerced)]


def latency_summary(samples: Sequence[float]) -> dict:
    """JSON-ready tail-latency summary (used by the serve and cluster
    reports).

    Keys: ``n``, ``mean``, ``min``, ``max`` and one ``pNN`` entry per
    percentile in :data:`LATENCY_PERCENTILES`.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("latency summary of an empty sample")
    summary = {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for p, value in zip(LATENCY_PERCENTILES,
                        percentiles(arr, LATENCY_PERCENTILES)):
        summary[f"p{p}"] = value
    return summary
