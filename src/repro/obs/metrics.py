"""Lightweight in-process metrics: counters, gauges, histograms.

The registry is the observability layer's data plane: the simulator and
runtime record what happened (bytes moved, FLOPs executed, retries,
cache hits, queue waits) into one :class:`MetricsRegistry` that the
caller threads through :class:`~repro.runtime.routines.CoCoPeLiaLibrary`
or :class:`~repro.sim.device.GpuDevice`.  Design rules:

* **Default off.**  Every instrumentation point is guarded by
  ``metrics is not None``; no registry means no overhead and no
  behaviour change.
* **No clocks, no locks.**  All values come from the simulation, which
  is single-threaded and deterministic; the registry never reads wall
  time, so metrics are exactly reproducible.
* **Mergeable.**  Histograms with identical bucket bounds merge
  associatively, so per-shard registries can be combined (multi-GPU).

Metric naming convention: dot-separated, namespaced by layer —
``sim.*`` (link/compute engines), ``runtime.*`` (scheduler/routines),
``multigpu.*`` (sharded gemm).  See DESIGN.md section 6c for the full
catalogue.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError


class MetricsError(ReproError):
    """A metric was created or updated inconsistently."""


def _check_name(name: str) -> str:
    if not name or any(ch.isspace() for ch in name):
        raise MetricsError(f"invalid metric name: {name!r}")
    return name


class Counter:
    """A monotonically non-decreasing accumulator (float-valued)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        if not math.isfinite(amount):
            raise MetricsError(
                f"counter {self.name!r} increment must be finite: {amount}"
            )
        self.value += amount

    def as_dict(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self.value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise MetricsError(
                f"gauge {self.name!r} value must be finite: {value}"
            )
        self.value = float(value)

    def as_dict(self) -> float:
        return self.value


#: Default bucket upper bounds for time-like observations (seconds):
#: geometric from 1 µs to 1 s, plus the implicit +inf overflow bucket.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 1)
)


class Histogram:
    """Fixed-bound bucketed distribution with exact sum/count/min/max.

    ``bounds`` are the bucket *upper* edges (strictly increasing); an
    observation lands in the first bucket whose bound is >= the value,
    or in the implicit overflow bucket.  Because the bounds are fixed
    at construction, :meth:`merge` is a plain element-wise sum and is
    therefore associative and commutative — the property the
    multi-shard aggregation relies on.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = _check_name(name)
        bounds = tuple(float(b) for b in
                       (DEFAULT_BOUNDS if bounds is None else bounds))
        if not bounds:
            raise MetricsError(f"histogram {self.name!r} needs >= 1 bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {self.name!r} bounds must be strictly "
                f"increasing: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise MetricsError(
                f"histogram {self.name!r} observation must be finite: {value}"
            )
        idx = len(self.bounds)  # overflow bucket
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms with identical bounds (associative)."""
        if self.bounds != other.bounds:
            raise MetricsError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        merged = Histogram(self.name, self.bounds)
        merged.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named metrics, created on first use (get-or-create semantics).

    A name belongs to exactly one metric kind; asking for an existing
    name with a different kind (or different histogram bounds) raises
    :class:`MetricsError` rather than silently aliasing.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, own: Dict) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not own and name in table:
                raise MetricsError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, bounds)
        elif bounds is not None and tuple(float(b) for b in bounds) \
                != metric.bounds:
            raise MetricsError(
                f"histogram {name!r} re-requested with different bounds"
            )
        return metric

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot: {counters, gauges, histograms}."""
        return {
            "counters": {n: c.as_dict()
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.as_dict()
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }
