"""Deterministic per-task seed derivation for the fan-out layer.

Parallel determinism hinges on seeds being a pure function of the task
*identity*, never of execution order: every task's seed is derived up
front from a root seed plus the task's coordinates in its grid (edge
index, repetition number, ...), so serial and parallel executions feed
bit-identical seeds to bit-identical simulations.

Derivation uses :class:`numpy.random.SeedSequence`, whose spawn
hashing guarantees well-separated substreams for distinct coordinate
paths — neighbouring task indices do not produce correlated noise the
way ``seed + i`` arithmetic can.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

PathEntry = Union[int, str]


def _entry_to_int(entry: PathEntry) -> int:
    if isinstance(entry, str):
        return zlib.crc32(entry.encode("utf-8"))
    return int(entry)


def task_seed(root: int, *path: PathEntry) -> int:
    """A deterministic seed for the task at ``path`` under ``root``.

    ``path`` entries may be ints (grid indices) or strings (direction
    names, routine names); strings hash via CRC-32 so the same path
    always yields the same seed on any platform.

    Caveat: ``SeedSequence`` treats trailing zero words as padding, so
    a path ending in ``0`` collides with its parent path
    (``task_seed(r, "uni") == task_seed(r, "uni", 0)``).  Callers must
    therefore never hand out a prefix of another task's path as a seed
    path of its own — the fan-out sites all use fixed-depth paths per
    grid, where this cannot arise.
    """
    entries = (int(root),) + tuple(_entry_to_int(p) for p in path)
    ss = np.random.SeedSequence(entries)
    return int(ss.generate_state(1)[0])
