"""Shared picklable task functions for out-of-tree fan-out callers.

Task functions submitted to :func:`repro.parallel.pmap` must be
importable module-level callables.  Call sites that live outside the
installable package tree (the ``benchmarks/`` scripts) cannot host
such functions reliably, so the ones they need live here.

Imports happen inside the functions: with warm worker caches the heavy
modules are already loaded, and the serial path pays the import exactly
once.
"""

from __future__ import annotations


def serve_rate_task(machine, scale: str, rate: float, n_requests: int,
                    n_gpus: int, seed: int,
                    workload_scale: str = "tiny") -> dict:
    """Serve one fixed-seed open-loop workload; return its report dict.

    One point of a rate sweep.  Models come from the per-process warm
    cache (:func:`repro.experiments.harness.models_for`), so workers
    never re-deploy.
    """
    from ..experiments.harness import models_for
    from ..obs import MetricsRegistry
    from ..serve import (BlasServer, ServerConfig, WorkloadSpec,
                         generate_workload, serve_report)

    models = models_for(machine, scale)
    spec = WorkloadSpec(arrival="poisson", rate=rate,
                        n_requests=n_requests, scale=workload_scale,
                        seed=seed)
    config = ServerConfig(n_gpus=n_gpus, seed=seed)
    server = BlasServer(machine, models, config,
                        metrics=MetricsRegistry())
    return serve_report(server.serve(generate_workload(spec)))
