"""Deterministic process-pool parallelism for grid-shaped work.

The deployment micro-benchmark grid, the repeated-measurement loops,
the per-problem figure sweeps, and the serving rate sweeps are all
independent seeded simulations; this package fans them out across a
``ProcessPoolExecutor`` without giving up the repo's byte-identical
determinism contract (see :mod:`repro.parallel.pool` for the contract,
DESIGN.md §7c for the rationale).
"""

from .pool import SERIAL, ParallelConfig, default_chunksize, pmap
from .seeds import task_seed

__all__ = [
    "ParallelConfig",
    "SERIAL",
    "default_chunksize",
    "pmap",
    "task_seed",
]
