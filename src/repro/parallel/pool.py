"""Deterministic process-pool fan-out (``ParallelConfig`` + ``pmap``).

The determinism contract, relied on by the byte-identical CI gates:

* every task is a module-level function of explicit arguments (its
  seeds pre-derived via :mod:`repro.parallel.seeds`), never of shared
  mutable state, so a task computes the same result in any process;
* results merge in **submission order** — completion order, which
  varies with scheduling, is never observable;
* ``workers <= 1`` (or an unavailable pool) degrades to running the
  same task functions serially in-process, which is why serial and
  parallel runs are byte-identical rather than merely close.

Worker processes rebuild expensive shared state (deployed model
databases, prediction caches) once per process via the pool
initializer instead of pickling it per task; see
:func:`repro.experiments.harness.warm_payload`.

A task that raises inside a worker surfaces as :class:`WorkerError`
carrying the original traceback text.  Pool *infrastructure* failures
(fork unavailable, broken pool) are not task failures: ``pmap`` falls
back to the serial path, which the contract guarantees produces the
same results.
"""

from __future__ import annotations

import math
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import multiprocessing

from ..errors import ParallelError, WorkerError

#: Set in worker processes by the pool initializer; forbids nested
#: pools (a worker calling ``pmap`` runs the serial path).
_IN_WORKER = False

#: Chunks submitted per worker when no explicit chunksize is given;
#: >1 smooths load imbalance without drowning in submission overhead.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan a task grid out across processes.

    workers
        Process count; ``0`` and ``1`` both mean serial in-process
        execution.  Negative values are a configuration error.
    chunksize
        Tasks per pool submission; ``None`` derives a balanced value
        from the grid size.
    """

    workers: int = 1
    chunksize: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ParallelError(
                f"workers must be >= 0, got {self.workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ParallelError(
                f"chunksize must be >= 1, got {self.chunksize}")

    @property
    def enabled(self) -> bool:
        """Whether this config asks for an actual process pool."""
        return self.workers > 1 and not _IN_WORKER

    @staticmethod
    def resolve(parallel: "Union[ParallelConfig, int, None]"
                ) -> "ParallelConfig":
        """Coerce the common ``parallel=`` argument forms to a config."""
        if parallel is None:
            return SERIAL
        if isinstance(parallel, ParallelConfig):
            return parallel
        if isinstance(parallel, int) and not isinstance(parallel, bool):
            return ParallelConfig(workers=parallel)
        raise ParallelError(
            f"parallel must be None, an int, or a ParallelConfig, "
            f"got {parallel!r}")


#: The default: run everything in-process.
SERIAL = ParallelConfig(workers=1)


def _worker_bootstrap(initializer: Optional[Callable[..., None]],
                      initargs: Tuple) -> None:
    """Pool initializer: mark the process as a worker, then warm it."""
    global _IN_WORKER
    _IN_WORKER = True
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(fn: Callable, chunk: Sequence[Tuple]) -> List[Tuple[bool, Any]]:
    """Run one chunk of tasks in a worker; never raises.

    Each element is ``(True, result)`` or ``(False, traceback_text)``.
    A failing task ends its chunk (mirroring serial fail-fast), but the
    captured traceback travels back as text since traceback objects do
    not pickle.
    """
    out: List[Tuple[bool, Any]] = []
    for args in chunk:
        try:
            out.append((True, fn(*args)))
        except BaseException:
            out.append((False, traceback.format_exc()))
            break
    return out


def _run_serial(fn: Callable, tasks: Sequence[Tuple]) -> List[Any]:
    return [fn(*args) for args in tasks]


def _check_tasks(tasks: Sequence) -> List[Tuple]:
    checked = []
    for i, args in enumerate(tasks):
        if not isinstance(args, tuple):
            raise ParallelError(
                f"task {i} is {type(args).__name__}, not a tuple of "
                f"positional arguments")
        checked.append(args)
    return checked


def default_chunksize(ntasks: int, workers: int) -> int:
    """Balanced tasks-per-submission for a grid of ``ntasks``."""
    return max(1, math.ceil(ntasks / (workers * _CHUNKS_PER_WORKER)))


def pmap(
    fn: Callable,
    tasks: Sequence[Tuple],
    parallel: "Union[ParallelConfig, int, None]" = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Map ``fn`` over pre-seeded argument tuples, deterministically.

    ``tasks`` is a sequence of positional-argument tuples; the result
    list matches its order exactly regardless of which worker finished
    first.  ``fn`` must be a module-level (picklable) function whose
    output depends only on its arguments.

    ``initializer(*initargs)`` runs once per worker process before any
    task (warm caches); it does not run on the serial path, where the
    parent's caches are already warm.
    """
    cfg = ParallelConfig.resolve(parallel)
    tasks = _check_tasks(tasks)
    if not tasks:
        return []
    if not cfg.enabled or len(tasks) == 1:
        return _run_serial(fn, tasks)

    workers = min(cfg.workers, len(tasks))
    chunksize = (cfg.chunksize if cfg.chunksize is not None
                 else default_chunksize(len(tasks), workers))
    chunks = [tasks[i:i + chunksize]
              for i in range(0, len(tasks), chunksize)]

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp_context = None

    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_worker_bootstrap,
            initargs=(initializer, initargs),
        )
    except (OSError, PermissionError, ValueError, NotImplementedError):
        # No pool available here (sandbox, resource limits): the serial
        # path is the same computation, so fall back silently.
        return _run_serial(fn, tasks)

    results: List[Any] = []
    try:
        with executor:
            futures = [executor.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            # Submission-order merge: iterate futures in the order the
            # chunks were submitted, never as_completed().
            for future in futures:
                for ok, payload in future.result():
                    if not ok:
                        raise WorkerError(payload)
                    results.append(payload)
    except (BrokenProcessPool, OSError):
        # Workers died for infrastructure reasons (OOM killer, signal);
        # rerun the deterministic grid serially rather than failing.
        return _run_serial(fn, tasks)
    return results
