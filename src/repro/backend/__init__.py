"""cuBLAS-like backend over the simulated GPU device.

Exposes the primitives the paper's library is built on —
``cublas{Set,Get}MatrixAsync``-style transfers and
``cublas{D,S}{gemm,axpy}``-style kernels — as methods of a
:class:`CublasContext` bound to one :class:`~repro.sim.GpuDevice`.
When buffers carry real numpy arrays, operations also perform the
actual data movement and arithmetic at their simulated completion time.
"""

from .cublas import CublasContext, DeviceMatrix, DeviceVector, MatrixView

__all__ = ["CublasContext", "DeviceMatrix", "DeviceVector", "MatrixView"]
