"""The cuBLAS-like primitive layer.

Everything the tile schedulers need: typed device matrices/vectors,
async sub-matrix transfers (``set_matrix_async`` / ``get_matrix_async``
mirroring ``cublasSetMatrixAsync`` / ``cublasGetMatrixAsync``), and
async gemm/axpy kernels whose durations come from the machine's
ground-truth kernel models.

Data policy: when the destination/source arrays exist, the operation's
payload performs the real copy/compute at simulated completion time;
otherwise only timing is simulated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import BlasError, SimulationError
from ..sim.device import GpuDevice
from ..sim.faults import corrupt_array, tile_checksum
from ..sim.memory import DeviceBuffer, HostArray
from ..sim.stream import Operation, Stream
from ..units import dtype_size


class DeviceMatrix:
    """A rows x cols matrix in simulated device memory."""

    __slots__ = ("rows", "cols", "dtype", "buf", "_device")

    def __init__(self, device: GpuDevice, rows: int, cols: int, dtype,
                 with_data: bool, name: str = "") -> None:
        if rows <= 0 or cols <= 0:
            raise BlasError(f"non-positive matrix dims: {(rows, cols)}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = np.dtype(dtype)
        nbytes = rows * cols * dtype_size(dtype)
        self.buf = device.alloc(
            nbytes, shape=(rows, cols), dtype=dtype, with_data=with_data, name=name
        )
        self._device = device

    @property
    def nbytes(self) -> int:
        return self.buf.nbytes

    @property
    def array(self) -> Optional[np.ndarray]:
        return self.buf.array

    def free(self) -> None:
        self._device.free(self.buf)


class DeviceVector:
    """A length-n vector in simulated device memory."""

    __slots__ = ("n", "dtype", "buf", "_device")

    def __init__(self, device: GpuDevice, n: int, dtype, with_data: bool,
                 name: str = "") -> None:
        if n <= 0:
            raise BlasError(f"non-positive vector length: {n}")
        self.n = int(n)
        self.dtype = np.dtype(dtype)
        nbytes = n * dtype_size(dtype)
        self.buf = device.alloc(
            nbytes, shape=(n,), dtype=dtype, with_data=with_data, name=name
        )
        self._device = device

    @property
    def nbytes(self) -> int:
        return self.buf.nbytes

    @property
    def array(self) -> Optional[np.ndarray]:
        return self.buf.array

    def free(self) -> None:
        self._device.free(self.buf)


class MatrixView:
    """A top-left window into a :class:`DeviceMatrix`.

    Lets a persistent ``T x T`` slot (double buffering in the
    cuBLASXt-like baseline) serve ragged edge tiles without
    reallocation: transfers and kernels see the window's dims, payloads
    write through to the backing array.
    """

    __slots__ = ("base", "rows", "cols", "dtype")

    def __init__(self, base: DeviceMatrix, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0 or rows > base.rows or cols > base.cols:
            raise BlasError(
                f"invalid {rows}x{cols} view of {base.rows}x{base.cols} matrix"
            )
        self.base = base
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = base.dtype

    @property
    def buf(self):
        return self.base.buf

    @property
    def array(self) -> Optional[np.ndarray]:
        a = self.base.array
        if a is None:
            return None
        return a[: self.rows, : self.cols]


def _check_pinned(host: HostArray) -> None:
    if not host.pinned:
        raise BlasError(
            f"async transfer requires pinned host memory (operand {host.name})"
        )


class CublasContext:
    """A cuBLAS handle bound to one simulated device."""

    def __init__(self, device: GpuDevice) -> None:
        self.device = device
        self._kernels = device.config.kernels

    @staticmethod
    def _integrity_hooks(src_getter, dst_getter):
        """Checksum verify / corruption hooks for one transfer.

        Only built in compute mode with fault injection active: the
        device corrupts the destination via ``corrupt`` and detects it
        by the ``verify`` checksum mismatch (a re-run of the transfer
        payload then overwrites the damage with good source data).
        """

        def verify() -> bool:
            return tile_checksum(dst_getter()) == tile_checksum(src_getter())

        def corrupt() -> None:
            corrupt_array(dst_getter())

        return verify, corrupt

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def alloc_matrix(self, rows: int, cols: int, dtype, with_data: bool = False,
                     name: str = "") -> DeviceMatrix:
        return DeviceMatrix(self.device, rows, cols, dtype, with_data, name)

    def alloc_vector(self, n: int, dtype, with_data: bool = False,
                     name: str = "") -> DeviceVector:
        return DeviceVector(self.device, n, dtype, with_data, name)

    # ------------------------------------------------------------------
    # transfers (cublasSetMatrixAsync / cublasGetMatrixAsync style)
    # ------------------------------------------------------------------

    def set_matrix_async(
        self,
        host: HostArray,
        row0: int,
        col0: int,
        dst: DeviceMatrix,
        stream: Stream,
        tag: str = "",
    ) -> Operation:
        """Copy host[row0:row0+dst.rows, col0:col0+dst.cols] to device."""
        _check_pinned(host)
        rows, cols = dst.rows, dst.cols
        self._check_window(host, row0, col0, rows, cols)
        payload = verify = corrupt = None
        if host.has_data and dst.array is not None:
            src_view = host.array[row0:row0 + rows, col0:col0 + cols]

            def payload() -> None:
                dst.buf.check_alive()
                dst.array[:, :] = src_view

            if self.device.faults is not None:
                verify, corrupt = self._integrity_hooks(
                    lambda: src_view, lambda: dst.array)

        return self.device.memcpy_h2d_async(
            rows * cols * dtype_size(dst.dtype), stream,
            tag=tag or f"h2d:{host.name}[{row0},{col0}]", payload=payload,
            verify=verify, corrupt=corrupt,
        )

    def get_matrix_async(
        self,
        src: DeviceMatrix,
        host: HostArray,
        row0: int,
        col0: int,
        stream: Stream,
        tag: str = "",
    ) -> Operation:
        """Copy the device matrix into host[row0:.., col0:..]."""
        _check_pinned(host)
        rows, cols = src.rows, src.cols
        self._check_window(host, row0, col0, rows, cols)
        payload = verify = corrupt = None
        if host.has_data and src.array is not None:
            dst_view = host.array[row0:row0 + rows, col0:col0 + cols]
            src_mat = src

            def payload() -> None:
                src_mat.buf.check_alive()
                dst_view[:, :] = src_mat.array

            if self.device.faults is not None:
                verify, corrupt = self._integrity_hooks(
                    lambda: src_mat.array, lambda: dst_view)

        return self.device.memcpy_d2h_async(
            rows * cols * dtype_size(src.dtype), stream,
            tag=tag or f"d2h:{host.name}[{row0},{col0}]", payload=payload,
            verify=verify, corrupt=corrupt,
        )

    def set_vector_async(
        self,
        host: HostArray,
        off: int,
        dst: DeviceVector,
        stream: Stream,
        tag: str = "",
    ) -> Operation:
        """Copy host[off:off+dst.n] to the device vector."""
        _check_pinned(host)
        n = dst.n
        self._check_span(host, off, n)
        payload = verify = corrupt = None
        if host.has_data and dst.array is not None:
            src_view = host.array[off:off + n]

            def payload() -> None:
                dst.buf.check_alive()
                dst.array[:] = src_view

            if self.device.faults is not None:
                verify, corrupt = self._integrity_hooks(
                    lambda: src_view, lambda: dst.array)

        return self.device.memcpy_h2d_async(
            n * dtype_size(dst.dtype), stream,
            tag=tag or f"h2d:{host.name}[{off}]", payload=payload,
            verify=verify, corrupt=corrupt,
        )

    def get_vector_async(
        self,
        src: DeviceVector,
        host: HostArray,
        off: int,
        stream: Stream,
        tag: str = "",
    ) -> Operation:
        """Copy the device vector into host[off:off+src.n]."""
        _check_pinned(host)
        n = src.n
        self._check_span(host, off, n)
        payload = verify = corrupt = None
        if host.has_data and src.array is not None:
            dst_view = host.array[off:off + n]
            src_vec = src

            def payload() -> None:
                src_vec.buf.check_alive()
                dst_view[:] = src_vec.array

            if self.device.faults is not None:
                verify, corrupt = self._integrity_hooks(
                    lambda: src_vec.array, lambda: dst_view)

        return self.device.memcpy_d2h_async(
            n * dtype_size(src.dtype), stream,
            tag=tag or f"d2h:{host.name}[{off}]", payload=payload,
            verify=verify, corrupt=corrupt,
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def gemm_async(
        self,
        a: DeviceMatrix,
        b: DeviceMatrix,
        c: DeviceMatrix,
        stream: Stream,
        alpha: float = 1.0,
        beta: float = 1.0,
        transb: bool = False,
        tag: str = "",
    ) -> Operation:
        """Launch ``C = alpha*A@op(B) + beta*C`` on device tiles.

        ``transb=True`` uses ``op(B) = B^T`` (the cublas ``CUBLAS_OP_T``
        case the tiled syrk is built on).
        """
        m, k = a.rows, a.cols
        if transb:
            n, k2 = b.rows, b.cols
        else:
            k2, n = b.rows, b.cols
        if k != k2 or (c.rows, c.cols) != (m, n):
            raise BlasError(
                f"gemm tile mismatch: A {a.rows}x{a.cols}, "
                f"{'B^T' if transb else 'B'} {b.rows}x{b.cols}, "
                f"C {c.rows}x{c.cols}"
            )
        if not (a.dtype == b.dtype == c.dtype):
            raise BlasError("gemm tiles must share a dtype")
        duration = self._kernels.gemm_time(m, n, k, a.dtype)
        payload = None
        if a.array is not None and b.array is not None and c.array is not None:
            dt = a.dtype.type

            def payload() -> None:
                c.buf.check_alive()
                rhs = b.array.T if transb else b.array
                c.array[:, :] = dt(alpha) * (a.array @ rhs) + dt(beta) * c.array

        return self.device.launch_async(
            duration, stream, tag=tag or f"gemm{m}x{n}x{k}",
            flops=2.0 * m * n * k, payload=payload,
        )

    def gemv_async(
        self,
        a,
        x: DeviceVector,
        y: DeviceVector,
        stream: Stream,
        alpha: float = 1.0,
        beta: float = 1.0,
        tag: str = "",
    ) -> Operation:
        """Launch ``y = alpha*A@x + beta*y`` on device operands."""
        m, n = a.rows, a.cols
        if x.n != n or y.n != m:
            raise BlasError(
                f"gemv shape mismatch: A {m}x{n}, x {x.n}, y {y.n}"
            )
        if not (a.dtype == x.dtype == y.dtype):
            raise BlasError("gemv operands must share a dtype")
        duration = self._kernels.gemv_time(m, n, a.dtype)
        payload = None
        if a.array is not None and x.array is not None and y.array is not None:
            dt = a.dtype.type

            def payload() -> None:
                y.buf.check_alive()
                y.array[:] = dt(alpha) * (a.array @ x.array) + dt(beta) * y.array

        return self.device.launch_async(
            duration, stream, tag=tag or f"gemv{m}x{n}",
            flops=2.0 * m * n, payload=payload,
        )

    def axpy_async(
        self,
        x: DeviceVector,
        y: DeviceVector,
        stream: Stream,
        alpha: float = 1.0,
        tag: str = "",
    ) -> Operation:
        """Launch ``y = alpha*x + y`` on device vectors."""
        if x.n != y.n:
            raise BlasError(f"axpy length mismatch: {x.n} vs {y.n}")
        if x.dtype != y.dtype:
            raise BlasError("axpy vectors must share a dtype")
        duration = self._kernels.axpy_time(x.n, x.dtype)
        payload = None
        if x.array is not None and y.array is not None:
            dt = x.dtype.type

            def payload() -> None:
                y.buf.check_alive()
                y.array[:] = dt(alpha) * x.array + y.array

        return self.device.launch_async(
            duration, stream, tag=tag or f"axpy{x.n}",
            flops=2.0 * x.n, payload=payload,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _check_window(host: HostArray, row0: int, col0: int,
                      rows: int, cols: int) -> None:
        if len(host.shape) != 2:
            raise BlasError(f"matrix transfer on non-matrix host operand {host.name}")
        h_rows, h_cols = host.shape
        if row0 < 0 or col0 < 0 or row0 + rows > h_rows or col0 + cols > h_cols:
            raise SimulationError(
                f"transfer window [{row0}:{row0 + rows}, {col0}:{col0 + cols}] "
                f"outside host operand {host.name} of shape {host.shape}"
            )

    @staticmethod
    def _check_span(host: HostArray, off: int, n: int) -> None:
        if len(host.shape) != 1:
            raise BlasError(f"vector transfer on non-vector host operand {host.name}")
        if off < 0 or off + n > host.shape[0]:
            raise SimulationError(
                f"transfer span [{off}:{off + n}] outside host operand "
                f"{host.name} of length {host.shape[0]}"
            )
