"""Quickstart: deploy CoCoPeLia on a simulated testbed and offload gemm.

Walks the full paper pipeline on the simulated V100 testbed:

1. deployment — transfer/kernel micro-benchmarks fit the machine models;
2. runtime tile selection — the DR model picks T for the problem;
3. pipelined offload — 3-way-concurrency execution with data reuse;
4. comparison against the cuBLASXt-like and BLASX-like baselines and
   the serial (no overlap) floor.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BlasXLibrary,
    CoCoPeLiaLibrary,
    CublasXtLibrary,
    SerialOffloadLibrary,
    deploy_quick,
    testbed_ii,
)


def main() -> None:
    machine = testbed_ii()
    print(f"Machine: {machine.display_name} ({machine.pcie}, "
          f"h2d {machine.h2d.bandwidth / 1e9:.2f} GB/s)")

    print("\n[1/3] Deploying (micro-benchmarks + least-squares fits)...")
    models = deploy_quick(machine)
    print(f"  fitted h2d: {models.link.h2d.bandwidth_gb:.2f} GB/s, "
          f"sl={models.link.h2d.sl:.2f}; "
          f"d2h: {models.link.d2h.bandwidth_gb:.2f} GB/s, "
          f"sl={models.link.d2h.sl:.2f}")
    print(f"  dgemm lookup: {len(models.exec_lookup('gemm', 'd'))} tile sizes")

    print("\n[2/3] Verifying numerics on a small problem...")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((512, 384))
    b = rng.standard_normal((384, 640))
    c = rng.standard_normal((512, 640))
    expected = 1.5 * (a @ b) + 0.5 * c
    lib = CoCoPeLiaLibrary(machine, models)
    lib.gemm(a=a, b=b, c=c, alpha=1.5, beta=0.5, tile_size=128)
    err = np.max(np.abs(c - expected)) / np.max(np.abs(expected))
    print(f"  tiled result matches numpy reference (rel. error {err:.2e})")

    print("\n[3/3] Offloading dgemm 8192^3 (timing mode, full offload)...")
    res = lib.gemm(8192, 8192, 8192)
    print(f"  CoCoPeLia selected T={res.tile_size} via the "
          f"'{res.model}' model")
    print(f"  predicted {res.predicted_seconds * 1e3:8.1f} ms, "
          f"measured {res.seconds * 1e3:8.1f} ms "
          f"(error {100 * res.prediction_error:+.1f}%)")
    print(f"  achieved {res.gflops:.0f} GFLOP/s, moved "
          f"{res.h2d_bytes / 1e9:.2f} GB h2d / {res.d2h_bytes / 1e9:.2f} GB d2h")

    print("\nComparison (same problem):")
    rows = [("CoCoPeLia (auto T)", res)]
    xt = CublasXtLibrary(machine)
    best_xt = min((xt.gemm(8192, 8192, 8192, tile_size=t)
                   for t in (2048, 3072, 4096)), key=lambda r: r.seconds)
    rows.append((f"cuBLASXt (best of sweep, T={best_xt.tile_size})", best_xt))
    rows.append(("BLASX (static T=2048)", BlasXLibrary(machine).gemm(
        8192, 8192, 8192)))
    rows.append(("Serial offload", SerialOffloadLibrary(machine).gemm(
        8192, 8192, 8192)))
    for label, r in rows:
        print(f"  {label:38s} {r.seconds * 1e3:9.1f} ms "
              f"({r.gflops:7.0f} GFLOP/s)")


if __name__ == "__main__":
    main()
