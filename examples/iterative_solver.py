"""Iterative-solver scenario: repeated gemm with device-resident data.

The paper motivates location-aware modeling with kernels that are
"executed iteratively ... some of the data may still be resident on the
GPU" (Section III-A.2, the XKBlas use case).  This example simulates a
block power iteration

    V <- A @ V   (repeated, V normalized on the host between steps)

where the large system matrix A is uploaded once and stays device-
resident, while the iterate block V round-trips.  It shows:

* the DataLoc/DR models selecting a different (larger) tile once A
  stops being transferred;
* per-problem model reuse: the tile choice is computed once and reused
  on every subsequent iteration (paper Section IV-C);
* the gain over naively treating every iteration as a full offload.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import CoCoPeLiaLibrary, Loc, deploy_quick, gemm_problem, testbed_ii
from repro.core.select import select_tile


def main() -> None:
    machine = testbed_ii()
    models = deploy_quick(machine)
    lib = CoCoPeLiaLibrary(machine, models)

    n = 8192          # system dimension
    block = 2048      # iterate block width
    iterations = 8

    full = gemm_problem(n, block, n)  # everything on the host
    resident = gemm_problem(n, block, n, loc_a=Loc.DEVICE)

    t_full = select_tile(full, models)
    t_res = select_tile(resident, models)
    print("Tile selection (DR model):")
    print(f"  full offload (A on host):      T={t_full.t_best:5d}, "
          f"predicted {t_full.predicted_time * 1e3:7.1f} ms/iter")
    print(f"  iterative (A device-resident): T={t_res.t_best:5d}, "
          f"predicted {t_res.predicted_time * 1e3:7.1f} ms/iter")

    print(f"\nRunning {iterations} iterations of V <- A @ V "
          f"({n}x{block}, A resident after warm-up)...")
    total_resident = 0.0
    total_naive = 0.0
    for i in range(iterations):
        if i == 0:
            # First iteration pays the full upload of A.
            res = lib.gemm(n, block, n, beta=0.0)
        else:
            res = lib.gemm(n, block, n, beta=0.0, loc_a=Loc.DEVICE)
        total_resident += res.seconds
        naive = lib.gemm(n, block, n, beta=0.0)
        total_naive += naive.seconds
        if i in (0, 1, iterations - 1):
            print(f"  iter {i}: resident {res.seconds * 1e3:7.1f} ms "
                  f"(T={res.tile_size})  vs full offload "
                  f"{naive.seconds * 1e3:7.1f} ms (T={naive.tile_size})")

    print(f"\nTotals over {iterations} iterations:")
    print(f"  location-aware:  {total_resident * 1e3:8.1f} ms")
    print(f"  naive full:      {total_naive * 1e3:8.1f} ms")
    print(f"  speedup:         {total_naive / total_resident:5.2f}x")
    cached = len(lib._tile_choices)
    print(f"\nModel reuse: {iterations * 2} calls required only {cached} "
          "tile-selection model evaluations (cached by problem signature).")

    print("\nNumerical check on a small instance...")
    rng = np.random.default_rng(1)
    a = rng.standard_normal((256, 256)) / 16.0
    v = rng.standard_normal((256, 64))
    v_ref = v.copy()
    for _ in range(3):
        out = np.zeros_like(v)
        lib.gemm(a=a, b=v, c=out, beta=0.0, tile_size=64)
        v = out / np.linalg.norm(out, axis=0)
        v_ref = a @ v_ref
        v_ref = v_ref / np.linalg.norm(v_ref, axis=0)
    err = np.max(np.abs(v - v_ref))
    print(f"  3-step block power iteration matches numpy (max err {err:.2e})")


if __name__ == "__main__":
    main()
