"""Application: right-looking blocked Cholesky on the CoCoPeLia library.

The kind of workload the paper's introduction motivates: a dense solver
built from BLAS building blocks, where the heavy trailing-matrix
updates are offloaded with 3-way concurrency while the small panel
factorizations stay on the host.

    for each panel p:
        L[p,p]   = potrf(A[p,p])                (host, tiny)
        L[i,p]   = A[i,p] @ L[p,p]^-T           (host trsm, thin)
        A[i,j]  -= L[i,p] @ L[j,p]^T            (OFFLOADED:
                                                  syrk for the diagonal,
                                                  gemm for the rest)

Each offloaded update gets its tile size from the deployed models;
repeated panels of equal size reuse the cached decision (the paper's
model-reuse behaviour).  The factor is verified against
``numpy.linalg.cholesky``.

Run:  python examples/blocked_cholesky.py
"""

import time

import numpy as np

from repro import CoCoPeLiaLibrary, deploy_quick, testbed_ii
from repro.deploy import DeploymentConfig, deploy


def make_spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) / np.sqrt(n)
    return a @ a.T + 2.0 * np.eye(n)


def blocked_cholesky(lib: CoCoPeLiaLibrary, a: np.ndarray, panel: int):
    """In-place lower Cholesky; returns (L, offload stats)."""
    n = a.shape[0]
    offload_time = 0.0
    offload_flops = 0.0
    calls = 0
    for p0 in range(0, n, panel):
        p1 = min(p0 + panel, n)
        # Host: factor the diagonal panel.
        a[p0:p1, p0:p1] = np.linalg.cholesky(a[p0:p1, p0:p1])
        if p1 < n:
            # Host: triangular solve for the sub-diagonal panel
            # (A[i,p] L[p,p]^-T, i.e. a trsm).
            l_pp = a[p0:p1, p0:p1]
            a[p1:, p0:p1] = np.linalg.solve(l_pp, a[p1:, p0:p1].T).T
            panel_block = np.ascontiguousarray(a[p1:, p0:p1])
            # OFFLOADED: symmetric trailing update via syrk.
            trailing = np.ascontiguousarray(a[p1:, p1:])
            res = lib.syrk(a=panel_block, c=trailing, alpha=-1.0, beta=1.0)
            offload_time += res.seconds
            offload_flops += res.flops
            calls += 1
            a[p1:, p1:] = trailing
    return np.tril(a), {
        "offload_time": offload_time,
        "offload_flops": offload_flops,
        "calls": calls,
        "cached_choices": len(lib._tile_choices),
    }


def main() -> None:
    machine = testbed_ii()
    models = deploy(machine, DeploymentConfig.quick(
        routines=[("gemm", np.float64), ("syrk", np.float64)]))
    lib = CoCoPeLiaLibrary(machine, models)

    n, panel = 1536, 384
    print(f"Blocked Cholesky of a {n}x{n} SPD matrix, panel={panel}, on "
          f"{machine.display_name}\n")
    a = make_spd(n)
    expected = np.linalg.cholesky(a)
    factor, stats = blocked_cholesky(lib, a.copy(), panel)
    err = np.max(np.abs(factor - expected)) / np.max(np.abs(expected))
    print(f"factor matches numpy.linalg.cholesky (rel. error {err:.2e})")
    print(f"offloaded {stats['calls']} trailing updates "
          f"({stats['offload_flops'] / 1e9:.2f} GFLOP) in "
          f"{stats['offload_time'] * 1e3:.2f} ms simulated "
          f"({stats['offload_flops'] / stats['offload_time'] / 1e9:.0f} "
          "GFLOP/s)")
    print(f"tile-selection model evaluated {stats['cached_choices']} times "
          f"for {stats['calls']} offloads (per-size caching)")

    print("\nScaling the trailing updates (timing mode, syrk):")
    for size in (4096, 8192, 12288):
        res = lib.syrk(size, panel)
        print(f"  trailing {size:5d} x panel {panel}: T={res.tile_size:5d} "
              f"{res.seconds * 1e3:8.2f} ms ({res.gflops:6.0f} GFLOP/s, "
              f"h2d {res.h2d_bytes / 1e6:7.1f} MB)")


if __name__ == "__main__":
    main()
