"""Multi-GPU scaling: the paper's future-work direction, working.

Splits a dgemm across 1-8 simulated V100s (column-block partition, A
broadcast to every GPU, per-shard CoCoPeLia tile selection) and reports
the measured scaling curve against the model's per-shard prediction and
against ideal linear scaling — showing exactly *why* scaling is
sub-linear: the A broadcast grows total traffic with GPU count.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import deploy_quick, gemm_problem, testbed_ii
from repro.experiments.report import format_table
from repro.runtime.multigpu import MultiGpuCoCoPeLia, predict_multi_gpu


def main() -> None:
    machine = testbed_ii()
    models = deploy_quick(machine)
    dims = (8192, 8192, 8192)
    problem = gemm_problem(*dims)
    print(f"dgemm {dims[0]}^3 across simulated {machine.gpu}s\n")

    base = None
    rows = []
    for n_gpus in (1, 2, 3, 4, 6, 8):
        mg = MultiGpuCoCoPeLia(machine, n_gpus, models)
        result = mg.gemm(*dims)
        predicted = predict_multi_gpu(problem, n_gpus, models)
        if base is None:
            base = result.seconds
        speedup = base / result.seconds
        rows.append([
            n_gpus,
            result.shards[0].tile_size,
            round(result.seconds * 1e3, 1),
            round(predicted * 1e3, 1),
            f"{speedup:.2f}x",
            f"{100 * speedup / n_gpus:.0f}%",
            round(result.h2d_bytes / 1e9, 2),
        ])
    print(format_table(
        ["GPUs", "T/shard", "measured ms", "predicted ms", "speedup",
         "efficiency", "total h2d GB"],
        rows,
        title="Multi-GPU scaling (column-block split, A broadcast)",
    ))
    print(
        "\nEfficiency drops with GPU count because every GPU fetches the "
        "full A\n(total h2d grows by one A per extra GPU) — the model "
        "predicts this from the\nper-shard DR composition, no new "
        "benchmarks needed."
    )

    print("\nNumerical check with 3 GPUs on a small instance...")
    rng = np.random.default_rng(2)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 384))
    c = rng.standard_normal((256, 384))
    expected = 2.0 * (a @ b) + 0.5 * c
    MultiGpuCoCoPeLia(machine, 3, models).gemm(
        a=a, b=b, c=c, alpha=2.0, beta=0.5, tile_size=128)
    err = np.max(np.abs(c - expected)) / np.max(np.abs(expected))
    print(f"  sharded result matches numpy (rel. error {err:.2e})")


if __name__ == "__main__":
    main()
