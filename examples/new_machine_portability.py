"""Portability: why static tiling sizes do not survive new hardware.

The paper's motivation (Section II-A): "static tiling sizes offer no
performance guarantee for future machines with different transfer
bandwidth/computation ratios."  This example tunes a single static tile
for the *average* of a problem mix on Testbed I (the K40 box), carries
that tile to Testbed II (the V100 box) — exactly what a compile-time
constant like BLASX's T=2048 does — and compares it against CoCoPeLia's
per-problem model selection on both machines.

Run:  python examples/new_machine_portability.py
"""

from repro import CoCoPeLiaLibrary, deploy_quick, gemm_problem, testbed_i, testbed_ii
from repro.core import Loc
from repro.experiments.metrics import geomean
from repro.experiments.report import format_table

#: A mix of square, partial-offload and fat-by-thin problems.
PROBLEMS = [
    gemm_problem(4096, 4096, 4096),
    gemm_problem(8192, 8192, 8192),
    gemm_problem(6144, 6144, 6144, loc_a=Loc.DEVICE, loc_b=Loc.DEVICE),
    gemm_problem(8192, 8192, 1536),   # fat-by-thin
    gemm_problem(2048, 2048, 8192),   # thin-by-fat
]

CANDIDATE_STATICS = (1024, 2048, 3072, 4096)


def measure(lib, problem, tile):
    m, n, k = problem.dims
    locs = {op.name: op.loc for op in problem.operands}
    return lib.gemm(m, n, k, tile_size=tile, loc_a=locs["A"],
                    loc_b=locs["B"], loc_c=locs["C"]).seconds


def tune_static(lib):
    """The best single tile for the mix (what a library vendor ships)."""
    best_tile, best_score = None, None
    for tile in CANDIDATE_STATICS:
        score = geomean([
            measure(lib, p, min(tile, max(p.dims)))
            for p in PROBLEMS
        ])
        if best_score is None or score < best_score:
            best_tile, best_score = tile, score
    return best_tile


def main() -> None:
    tb1, tb2 = testbed_i(), testbed_ii()
    lib1 = CoCoPeLiaLibrary(tb1, deploy_quick(tb1))
    lib2 = CoCoPeLiaLibrary(tb2, deploy_quick(tb2))

    static = tune_static(lib1)
    print(f"Static tile tuned on {tb1.display_name}: T={static}\n")

    for machine, lib in ((tb1, lib1), (tb2, lib2)):
        rows = []
        losses = []
        for p in PROBLEMS:
            m, n, k = p.dims
            locs = {op.name: op.loc for op in p.operands}
            auto = lib.gemm(m, n, k, loc_a=locs["A"], loc_b=locs["B"],
                            loc_c=locs["C"])
            t_static = measure(lib, p, min(static, max(p.dims)))
            loss = 100.0 * (t_static / auto.seconds - 1.0)
            losses.append(t_static / auto.seconds)
            rows.append([
                p.describe(), auto.tile_size,
                round(auto.seconds * 1e3, 1), round(t_static * 1e3, 1),
                f"{loss:+.1f}%",
            ])
        print(format_table(
            ["problem", "T (model)", "ms (model)", f"ms (T={static})",
             "static penalty"],
            rows,
            title=f"{machine.display_name}",
        ))
        print(f"  geomean static penalty: "
              f"{100 * (geomean(losses) - 1):+.1f}%\n")

    print("The tile tuned on yesterday's machine is not the tile for "
          "today's:\nmodel-driven selection adapts per problem *and* per "
          "machine with no retuning.")


if __name__ == "__main__":
    main()
