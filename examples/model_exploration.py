"""Model exploration: predicted vs measured offload time across tiles.

A miniature of the paper's Figs. 5/6 for one problem of your choice:
measure the CoCoPeLia library across the candidate tile sizes, predict
with every registered model, and print the comparison plus each model's
selected tile.  Useful for understanding *why* a tile gets picked.

Run:  python examples/model_exploration.py [M N K]
"""

import sys

from repro import CoCoPeLiaLibrary, deploy_quick, gemm_problem, testbed_ii
from repro.core.registry import available_models, predict
from repro.core.select import candidate_tiles, select_tile
from repro.experiments.report import ascii_series, format_table


def main() -> None:
    dims = (6144, 6144, 6144)
    if len(sys.argv) == 4:
        dims = tuple(int(x) for x in sys.argv[1:4])
    machine = testbed_ii()
    models = deploy_quick(machine)
    lib = CoCoPeLiaLibrary(machine, models)
    problem = gemm_problem(*dims)
    print(f"Problem: {problem.describe()} on {machine.display_name}\n")

    tiles = candidate_tiles(problem, models)
    measured = {}
    for t in tiles:
        measured[t] = lib.gemm(*dims, tile_size=t).seconds

    model_names = [m for m in available_models()]
    rows = []
    for t in tiles:
        row = [t, round(measured[t] * 1e3, 1)]
        for name in model_names:
            pred = predict(name, problem, t, models)
            row.append(f"{pred * 1e3:.1f}")
        rows.append(row)
    print(format_table(
        ["T", "measured ms"] + [f"{m} ms" for m in model_names], rows,
        title="Predicted vs measured offload time per tiling size",
    ))

    t_opt = min(measured, key=measured.get)
    print(f"\nEmpirical optimum: T={t_opt} "
          f"({measured[t_opt] * 1e3:.1f} ms)")
    for name in model_names:
        choice = select_tile(problem, models, model=name)
        loss = measured.get(choice.t_best)
        if loss is None:
            loss = lib.gemm(*dims, tile_size=choice.t_best).seconds
        print(f"  {name:9s} selects T={choice.t_best:5d} -> "
              f"{loss * 1e3:8.1f} ms "
              f"({100 * (loss / measured[t_opt] - 1):+5.1f}% vs optimum)")

    print("\nMeasured GFLOP/s vs tiling size:")
    gflops = [problem.flops() / measured[t] / 1e9 for t in tiles]
    print(ascii_series(tiles, gflops, width=64, height=10))


if __name__ == "__main__":
    main()
